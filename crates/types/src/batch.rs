//! Batches of client transactions.
//!
//! The evaluation (Section IX) batches 100 client transactions per
//! consensus by default and sweeps the batch size from 10 to 8000 in the
//! batching experiment (Figure 6(iii)–(iv)). A batch is the unit the shim
//! orders, the primary spawns executors for, and the verifier validates.
//!
//! # Zero-copy representation
//!
//! A batch travels through every layer of the architecture: the batcher
//! builds it, the primary embeds it in a `PREPREPARE`, every replica
//! stores it in its consensus log, the primary re-reads it to build
//! `EXECUTE` messages (one per spawned executor), and view changes
//! re-propose it. The transactions are therefore held behind an
//! `Arc<[Transaction]>`: cloning a [`Batch`] is a reference-count bump,
//! never a deep copy of the transaction vector. Two clones of the same
//! batch share storage, which [`Batch::shares_txns`] exposes so tests can
//! prove the hot path allocates no per-transaction memory.
//!
//! The batch also memoizes its wire digest `Δ = H(m)`: the consensus
//! layer computes it once through [`Batch::digest_memo`] and every clone
//! — whether taken before or after the computation — shares the cache
//! slot (it lives behind its own `Arc`), so replicas never re-hash a
//! batch they already validated.

use crate::digest::Digest;
use crate::ids::TxnId;
use crate::transaction::Transaction;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identifier of a batch: the identifier of its first transaction plus the
/// number of transactions. Honest components derive identical identifiers
/// for identical batches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId {
    /// Identifier of the first transaction in the batch.
    pub first: TxnId,
    /// Number of transactions in the batch.
    pub len: u32,
}

/// An ordered batch of client transactions, shared by reference count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Batch {
    /// The transactions, in the order chosen by the batching front-end.
    txns: Arc<[Transaction]>,
    /// Memoized wire digest `Δ = H(m)` (filled by the consensus layer on
    /// first use). The slot is behind its own `Arc` so every clone of the
    /// batch — including clones taken *before* the first computation —
    /// shares one cache: a later fill is visible to all copies.
    digest: Arc<OnceLock<Digest>>,
}

impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        // The digest cache is derived state; equality is over the payload.
        Arc::ptr_eq(&self.txns, &other.txns) || self.txns == other.txns
    }
}

impl Eq for Batch {}

impl Batch {
    /// Creates a batch from a list of transactions.
    ///
    /// # Panics
    /// Panics if the list is empty — the protocol never orders empty batches.
    #[must_use]
    pub fn new(txns: Vec<Transaction>) -> Self {
        assert!(
            !txns.is_empty(),
            "batches must contain at least one transaction"
        );
        Batch {
            txns: txns.into(),
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// A batch with a single transaction (unbatched operation).
    #[must_use]
    pub fn single(txn: Transaction) -> Self {
        Batch::new(vec![txn])
    }

    /// Creates a batch around already-shared transaction storage.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    #[must_use]
    pub fn from_shared(txns: Arc<[Transaction]>) -> Self {
        assert!(
            !txns.is_empty(),
            "batches must contain at least one transaction"
        );
        Batch {
            txns,
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// The transactions of the batch, in order.
    #[must_use]
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Iterates over the transactions.
    pub fn iter(&self) -> std::slice::Iter<'_, Transaction> {
        self.txns.iter()
    }

    /// Whether two batches share the same transaction storage (a clone
    /// relationship, not just equal contents). Used to prove the hot path
    /// is zero-copy.
    #[must_use]
    pub fn shares_txns(&self, other: &Batch) -> bool {
        Arc::ptr_eq(&self.txns, &other.txns)
    }

    /// Number of live references to this batch's transaction storage
    /// (tests and memory accounting).
    #[must_use]
    pub fn txns_refcount(&self) -> usize {
        Arc::strong_count(&self.txns)
    }

    /// Returns the memoized batch digest, computing it with `compute` on
    /// first use. The digest function itself lives in the consensus layer
    /// (it defines the wire format); this only provides the cache slot.
    pub fn digest_memo(&self, compute: impl FnOnce() -> Digest) -> Digest {
        *self.digest.get_or_init(compute)
    }

    /// The cached batch digest, if one has been computed on this value.
    #[must_use]
    pub fn cached_digest(&self) -> Option<Digest> {
        self.digest.get().copied()
    }

    /// The identifier of this batch.
    #[must_use]
    pub fn id(&self) -> BatchId {
        BatchId {
            first: self.txns[0].id,
            len: self.txns.len() as u32,
        }
    }

    /// Number of transactions in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the batch is empty (never true for constructed batches; kept
    /// for the `len`/`is_empty` pairing convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Identifiers of all transactions in the batch.
    #[must_use]
    pub fn txn_ids(&self) -> Vec<TxnId> {
        self.txns.iter().map(|t| t.id).collect()
    }

    /// Total modeled execution cost of the batch (executors run the batch's
    /// transactions sequentially within one invocation).
    #[must_use]
    pub fn total_execution_cost(&self) -> crate::time::SimDuration {
        self.txns
            .iter()
            .fold(crate::time::SimDuration::ZERO, |acc, t| {
                acc + t.execution_cost
            })
    }

    /// Whether every transaction in the batch declares its read-write set.
    #[must_use]
    pub fn rwsets_known(&self) -> bool {
        self.txns.iter().all(Transaction::rwset_known)
    }

    /// Wire size of the batch when embedded in a `PREPREPARE` message.
    ///
    /// With the default experiment configuration (100 single-op YCSB
    /// transactions) this lands near the paper's reported 5392 B
    /// `PREPREPARE` size.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        // 40 B of batch framing + per-txn compact encoding. Client requests
        // are shipped once to the primary; the pre-prepare carries a compact
        // per-transaction encoding (id + ops), not the client signatures.
        40 + self
            .txns
            .iter()
            .map(|t| 16 + t.ops.len() * 17 + 20)
            .sum::<usize>()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Transaction;
    type IntoIter = std::slice::Iter<'a, Transaction>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B[{:?}+{}]", self.first, self.len)
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::rwset::Key;
    use crate::transaction::Operation;

    fn txn(client: u32, counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::Read(Key(counter))],
        )
    }

    #[test]
    fn batch_id_is_first_plus_len() {
        let b = Batch::new(vec![txn(0, 0), txn(1, 0), txn(2, 0)]);
        let id = b.id();
        assert_eq!(id.first, TxnId::new(ClientId(0), 0));
        assert_eq!(id.len, 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn empty_batch_panics() {
        let _ = Batch::new(vec![]);
    }

    #[test]
    fn single_batch_has_one_txn() {
        let b = Batch::single(txn(5, 9));
        assert_eq!(b.len(), 1);
        assert_eq!(b.txn_ids(), vec![TxnId::new(ClientId(5), 9)]);
    }

    #[test]
    fn clones_share_transaction_storage() {
        let b = Batch::new(vec![txn(0, 0), txn(1, 0)]);
        let c = b.clone();
        assert!(b.shares_txns(&c), "a clone must be a refcount bump");
        assert_eq!(b.txns_refcount(), 2);
        assert_eq!(b, c);
        drop(c);
        assert_eq!(b.txns_refcount(), 1);
    }

    #[test]
    fn equal_contents_without_shared_storage_still_compare_equal() {
        let a = Batch::new(vec![txn(0, 0)]);
        let b = Batch::new(vec![txn(0, 0)]);
        assert!(!a.shares_txns(&b));
        assert_eq!(a, b);
        assert_ne!(a, Batch::new(vec![txn(0, 1)]));
    }

    #[test]
    fn digest_memo_computes_once_and_clones_carry_it() {
        let b = Batch::single(txn(0, 0));
        assert_eq!(b.cached_digest(), None);
        let mut computed = 0;
        let d = b.digest_memo(|| {
            computed += 1;
            Digest::from_bytes([7; 32])
        });
        let again = b.digest_memo(|| {
            computed += 1;
            Digest::from_bytes([8; 32])
        });
        assert_eq!(d, again);
        assert_eq!(computed, 1, "the digest must be computed exactly once");
        let clone = b.clone();
        assert_eq!(clone.cached_digest(), Some(d));
    }

    #[test]
    fn clone_taken_before_fill_sees_a_later_fill() {
        // Regression: the memo used to live in a per-value `OnceLock`, so a
        // clone taken before the first digest computation carried an empty
        // slot forever and re-hashed on its own. The slot is now shared
        // through an `Arc`: filling any copy fills them all.
        let b = Batch::single(txn(0, 0));
        let early_clone = b.clone();
        assert_eq!(early_clone.cached_digest(), None);
        let d = b.digest_memo(|| Digest::from_bytes([3; 32]));
        assert_eq!(
            early_clone.cached_digest(),
            Some(d),
            "a pre-fill clone must share the memo slot"
        );
        // And symmetrically: filling through the clone is visible to the
        // original (no second computation happens).
        let mut computed = 0;
        let again = early_clone.digest_memo(|| {
            computed += 1;
            Digest::from_bytes([4; 32])
        });
        assert_eq!(again, d);
        assert_eq!(computed, 0);
    }

    #[test]
    fn from_shared_reuses_the_given_storage() {
        let storage: Arc<[Transaction]> = vec![txn(0, 0), txn(1, 0)].into();
        let b = Batch::from_shared(Arc::clone(&storage));
        assert_eq!(b.len(), 2);
        assert!(Arc::ptr_eq(&storage, &b.txns));
    }

    #[test]
    fn execution_cost_sums_over_txns() {
        use crate::time::SimDuration;
        let t1 = txn(0, 0).with_execution_cost(SimDuration::from_millis(2));
        let t2 = txn(0, 1).with_execution_cost(SimDuration::from_millis(3));
        let b = Batch::new(vec![t1, t2]);
        assert_eq!(b.total_execution_cost(), SimDuration::from_millis(5));
    }

    #[test]
    fn rwsets_known_requires_all_txns() {
        let known = txn(0, 0).with_inferred_rwset();
        let unknown = txn(0, 1);
        assert!(Batch::new(vec![known.clone()]).rwsets_known());
        assert!(!Batch::new(vec![known, unknown]).rwsets_known());
    }

    #[test]
    fn wire_size_close_to_paper_for_default_batch() {
        // 100 single-op transactions ≈ paper's 5392 B pre-prepare payload.
        let txns: Vec<_> = (0..100).map(|i| txn(0, i)).collect();
        let b = Batch::new(txns);
        let size = b.wire_size();
        assert!(size > 4_500 && size < 6_500, "unexpected batch size {size}");
    }

    #[test]
    fn wire_size_scales_with_batch_size() {
        let small = Batch::new((0..10).map(|i| txn(0, i)).collect());
        let large = Batch::new((0..1000).map(|i| txn(0, i)).collect());
        assert!(large.wire_size() > 50 * small.wire_size());
    }
}
