//! Batches of client transactions.
//!
//! The evaluation (Section IX) batches 100 client transactions per
//! consensus by default and sweeps the batch size from 10 to 8000 in the
//! batching experiment (Figure 6(iii)–(iv)). A batch is the unit the shim
//! orders, the primary spawns executors for, and the verifier validates.

use crate::ids::TxnId;
use crate::transaction::Transaction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a batch: the identifier of its first transaction plus the
/// number of transactions. Honest components derive identical identifiers
/// for identical batches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BatchId {
    /// Identifier of the first transaction in the batch.
    pub first: TxnId,
    /// Number of transactions in the batch.
    pub len: u32,
}

/// An ordered batch of client transactions.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Batch {
    /// The transactions, in the order chosen by the batching front-end.
    pub txns: Vec<Transaction>,
}

impl Batch {
    /// Creates a batch from a list of transactions.
    ///
    /// # Panics
    /// Panics if the list is empty — the protocol never orders empty batches.
    #[must_use]
    pub fn new(txns: Vec<Transaction>) -> Self {
        assert!(
            !txns.is_empty(),
            "batches must contain at least one transaction"
        );
        Batch { txns }
    }

    /// A batch with a single transaction (unbatched operation).
    #[must_use]
    pub fn single(txn: Transaction) -> Self {
        Batch { txns: vec![txn] }
    }

    /// The identifier of this batch.
    #[must_use]
    pub fn id(&self) -> BatchId {
        BatchId {
            first: self.txns[0].id,
            len: self.txns.len() as u32,
        }
    }

    /// Number of transactions in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the batch is empty (never true for constructed batches; kept
    /// for the `len`/`is_empty` pairing convention).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Identifiers of all transactions in the batch.
    #[must_use]
    pub fn txn_ids(&self) -> Vec<TxnId> {
        self.txns.iter().map(|t| t.id).collect()
    }

    /// Total modeled execution cost of the batch (executors run the batch's
    /// transactions sequentially within one invocation).
    #[must_use]
    pub fn total_execution_cost(&self) -> crate::time::SimDuration {
        self.txns
            .iter()
            .fold(crate::time::SimDuration::ZERO, |acc, t| {
                acc + t.execution_cost
            })
    }

    /// Whether every transaction in the batch declares its read-write set.
    #[must_use]
    pub fn rwsets_known(&self) -> bool {
        self.txns.iter().all(Transaction::rwset_known)
    }

    /// Wire size of the batch when embedded in a `PREPREPARE` message.
    ///
    /// With the default experiment configuration (100 single-op YCSB
    /// transactions) this lands near the paper's reported 5392 B
    /// `PREPREPARE` size.
    #[must_use]
    pub fn wire_size(&self) -> usize {
        // 40 B of batch framing + per-txn compact encoding. Client requests
        // are shipped once to the primary; the pre-prepare carries a compact
        // per-transaction encoding (id + ops), not the client signatures.
        40 + self
            .txns
            .iter()
            .map(|t| 16 + t.ops.len() * 17 + 20)
            .sum::<usize>()
    }
}

impl fmt::Debug for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B[{:?}+{}]", self.first, self.len)
    }
}

impl fmt::Display for BatchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use crate::rwset::Key;
    use crate::transaction::Operation;

    fn txn(client: u32, counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(client), counter),
            vec![Operation::Read(Key(counter))],
        )
    }

    #[test]
    fn batch_id_is_first_plus_len() {
        let b = Batch::new(vec![txn(0, 0), txn(1, 0), txn(2, 0)]);
        let id = b.id();
        assert_eq!(id.first, TxnId::new(ClientId(0), 0));
        assert_eq!(id.len, 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one transaction")]
    fn empty_batch_panics() {
        let _ = Batch::new(vec![]);
    }

    #[test]
    fn single_batch_has_one_txn() {
        let b = Batch::single(txn(5, 9));
        assert_eq!(b.len(), 1);
        assert_eq!(b.txn_ids(), vec![TxnId::new(ClientId(5), 9)]);
    }

    #[test]
    fn execution_cost_sums_over_txns() {
        use crate::time::SimDuration;
        let t1 = txn(0, 0).with_execution_cost(SimDuration::from_millis(2));
        let t2 = txn(0, 1).with_execution_cost(SimDuration::from_millis(3));
        let b = Batch::new(vec![t1, t2]);
        assert_eq!(b.total_execution_cost(), SimDuration::from_millis(5));
    }

    #[test]
    fn rwsets_known_requires_all_txns() {
        let known = txn(0, 0).with_inferred_rwset();
        let unknown = txn(0, 1);
        assert!(Batch::new(vec![known.clone()]).rwsets_known());
        assert!(!Batch::new(vec![known, unknown]).rwsets_known());
    }

    #[test]
    fn wire_size_close_to_paper_for_default_batch() {
        // 100 single-op transactions ≈ paper's 5392 B pre-prepare payload.
        let txns: Vec<_> = (0..100).map(|i| txn(0, i)).collect();
        let b = Batch::new(txns);
        let size = b.wire_size();
        assert!(size > 4_500 && size < 6_500, "unexpected batch size {size}");
    }

    #[test]
    fn wire_size_scales_with_batch_size() {
        let small = Batch::new((0..10).map(|i| txn(0, i)).collect());
        let large = Batch::new((0..1000).map(|i| txn(0, i)).collect());
        assert!(large.wire_size() > 50 * small.wire_size());
    }
}
