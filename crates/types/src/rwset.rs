//! Keys, values, versions and read/write sets.
//!
//! During execution an executor collects the read-write set `rw` of a
//! transaction (Figure 3, lines 16–18); the verifier later compares the
//! versions it read against the current state of the storage (`ccheck`,
//! lines 31–32) before applying the writes. The types here are shared by
//! the storage engine, the executors and the verifier.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A key in the on-premise data-store (YCSB keys are dense integers).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub u64);

/// A value stored under a key. YCSB values are opaque byte strings; we keep
/// them small (8 bytes) and carry a logical length so that wire-size
/// accounting can still model the paper's 1 KiB records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value {
    /// The (compressed) value payload used for correctness checks.
    pub data: u64,
    /// Logical size in bytes of the full record, used for cost accounting.
    pub logical_len: u32,
}

/// A monotonically increasing per-key version number maintained by storage.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct Version(pub u64);

/// The set of keys a transaction declares it will read and write
/// (only available when read-write sets are *known* in advance,
/// Section VI-C).
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize, Debug)]
pub struct RwSetKeys {
    /// Keys that will be read.
    pub read_keys: BTreeSet<Key>,
    /// Keys that will be written.
    pub write_keys: BTreeSet<Key>,
}

/// Convenience alias for a sorted set of keys.
pub type KeySet = BTreeSet<Key>;

/// The observed read-write set `rw` collected by an executor during
/// execution: the versions it read and the values it intends to write.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize, Debug)]
pub struct ReadWriteSet {
    /// Keys read together with the version observed at read time.
    pub reads: Vec<(Key, Version)>,
    /// Keys written together with the new value.
    pub writes: Vec<(Key, Value)>,
}

impl Key {
    /// Builds a key from a raw integer.
    #[must_use]
    pub const fn new(k: u64) -> Self {
        Key(k)
    }
}

impl Value {
    /// A value with the given payload and the default 1 KiB logical record
    /// size used by the YCSB benchmark configuration of the paper.
    #[must_use]
    pub const fn new(data: u64) -> Self {
        Value {
            data,
            logical_len: 1024,
        }
    }

    /// A value with an explicit logical record length.
    #[must_use]
    pub const fn with_len(data: u64, logical_len: u32) -> Self {
        Value { data, logical_len }
    }
}

impl RwSetKeys {
    /// Creates a declared read-write set from iterators of keys.
    #[must_use]
    pub fn new<R, W>(reads: R, writes: W) -> Self
    where
        R: IntoIterator<Item = Key>,
        W: IntoIterator<Item = Key>,
    {
        RwSetKeys {
            read_keys: reads.into_iter().collect(),
            write_keys: writes.into_iter().collect(),
        }
    }

    /// All keys touched (read or written).
    #[must_use]
    pub fn all_keys(&self) -> KeySet {
        self.read_keys.union(&self.write_keys).copied().collect()
    }

    /// Whether the transaction writes at least one key.
    #[must_use]
    pub fn has_writes(&self) -> bool {
        !self.write_keys.is_empty()
    }

    /// Two transactions conflict iff they access a common data item and at
    /// least one of the accesses is a write (Section VI).
    #[must_use]
    pub fn conflicts_with(&self, other: &RwSetKeys) -> bool {
        // write-write conflicts
        if self
            .write_keys
            .intersection(&other.write_keys)
            .next()
            .is_some()
        {
            return true;
        }
        // my writes vs their reads
        if self
            .write_keys
            .intersection(&other.read_keys)
            .next()
            .is_some()
        {
            return true;
        }
        // my reads vs their writes
        if self
            .read_keys
            .intersection(&other.write_keys)
            .next()
            .is_some()
        {
            return true;
        }
        false
    }

    /// Whether this set is empty (the transaction touches no data).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.read_keys.is_empty() && self.write_keys.is_empty()
    }
}

impl ReadWriteSet {
    /// An empty read-write set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `key` was read at `version`.
    pub fn record_read(&mut self, key: Key, version: Version) {
        self.reads.push((key, version));
    }

    /// Records that `key` will be written with `value`.
    pub fn record_write(&mut self, key: Key, value: Value) {
        self.writes.push((key, value));
    }

    /// Number of reads plus writes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Whether the set records no accesses at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// The keys this observed set touches, as declared-set form.
    #[must_use]
    pub fn keys(&self) -> RwSetKeys {
        RwSetKeys {
            read_keys: self.reads.iter().map(|(k, _)| *k).collect(),
            write_keys: self.writes.iter().map(|(k, _)| *k).collect(),
        }
    }

    /// Wire size in bytes when shipped inside a `VERIFY` message
    /// (key + version per read, key + logical value length per write).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let read_bytes = self.reads.len() * (8 + 8);
        let write_bytes: usize = self
            .writes
            .iter()
            .map(|(_, v)| 8 + v.logical_len as usize)
            .sum();
        read_bytes + write_bytes
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(ids: &[u64]) -> Vec<Key> {
        ids.iter().copied().map(Key).collect()
    }

    #[test]
    fn conflict_requires_common_key_and_a_write() {
        let t = RwSetKeys::new(keys(&[1]), keys(&[2]));
        let read_only_same = RwSetKeys::new(keys(&[1]), keys(&[]));
        let writes_my_read = RwSetKeys::new(keys(&[]), keys(&[1]));
        let disjoint = RwSetKeys::new(keys(&[5]), keys(&[6]));
        let reads_my_write = RwSetKeys::new(keys(&[2]), keys(&[]));

        assert!(
            !t.conflicts_with(&read_only_same),
            "read-read is not a conflict"
        );
        assert!(t.conflicts_with(&writes_my_read));
        assert!(t.conflicts_with(&reads_my_write));
        assert!(!t.conflicts_with(&disjoint));
    }

    #[test]
    fn conflict_is_symmetric() {
        let a = RwSetKeys::new(keys(&[1, 2]), keys(&[3]));
        let b = RwSetKeys::new(keys(&[3]), keys(&[4]));
        assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn write_write_conflicts() {
        let a = RwSetKeys::new(keys(&[]), keys(&[7]));
        let b = RwSetKeys::new(keys(&[]), keys(&[7]));
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn all_keys_unions_reads_and_writes() {
        let a = RwSetKeys::new(keys(&[1, 2]), keys(&[2, 3]));
        let all: Vec<u64> = a.all_keys().iter().map(|k| k.0).collect();
        assert_eq!(all, vec![1, 2, 3]);
        assert!(a.has_writes());
        assert!(!a.is_empty());
        assert!(RwSetKeys::default().is_empty());
    }

    #[test]
    fn observed_set_records_and_reports() {
        let mut rw = ReadWriteSet::new();
        assert!(rw.is_empty());
        rw.record_read(Key(1), Version(4));
        rw.record_write(Key(2), Value::new(99));
        assert_eq!(rw.len(), 2);
        assert!(!rw.is_empty());
        let declared = rw.keys();
        assert!(declared.read_keys.contains(&Key(1)));
        assert!(declared.write_keys.contains(&Key(2)));
    }

    #[test]
    fn wire_size_counts_logical_record_lengths() {
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(0));
        rw.record_write(Key(2), Value::with_len(1, 100));
        assert_eq!(rw.wire_size(), 16 + 8 + 100);
    }

    #[test]
    fn default_value_models_one_kib_records() {
        assert_eq!(Value::new(5).logical_len, 1024);
    }
}
