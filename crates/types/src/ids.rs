//! Identifiers for every participant of the serverless-edge architecture.
//!
//! The paper assigns each shim node and each executor an identifier through
//! the function `id()` (Section III). We additionally give identifiers to
//! clients, the verifier and the storage so that the simulator and the
//! thread runtime can address every component uniformly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a shim (edge) node `R ∈ R`.
///
/// Shim nodes are numbered `0, 1, 2, …, n_R - 1`; the node with identifier
/// `v mod n_R` is the primary of view `v` (Section IV-B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a client `C ∈ C` (an edge application user, e.g. a UAV).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(pub u32);

/// Identifier of a serverless executor `E ∈ E`.
///
/// Executors are fleeting: a fresh identifier is minted for every spawned
/// function instance, so the space is `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExecutorId(pub u64);

/// Identifier of one execution shard of the sharded commit path.
///
/// Shards are numbered `0, 1, …, num_shards - 1` by the shard router
/// (`sbft-sharding`), which re-exports this type. It lives here so the
/// ordering-time plan tag ([`crate::ShardPlan`]) can travel through the
/// consensus messages without the consensus crate depending on the
/// sharding engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard owning `key` among `num_shards` shards — the one
    /// canonical `key → shard` function of the whole workspace (Fibonacci
    /// multiplicative hashing, scaled without modulo bias). The shard
    /// router (`sbft-sharding`) and the region-partitioned storage view
    /// (`sbft-storage`) both delegate here, so ordering-time planning,
    /// apply-time routing and geo placement can never disagree about
    /// where a key lives.
    #[must_use]
    pub fn of_key(key: crate::rwset::Key, num_shards: usize) -> ShardId {
        let n = num_shards.max(1) as u32;
        let h = key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ShardId(((u128::from(h) * u128::from(n)) >> 64) as u32)
    }
}

/// A PBFT view number. The primary of view `v` is node `v mod n_R`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct ViewNumber(pub u64);

/// A sequence number assigned by the shim primary to a client batch.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize, Debug,
)]
pub struct SeqNum(pub u64);

/// Index of a replica inside the shim (0-based), distinct from [`NodeId`] so
/// that configurations with non-contiguous node identifiers still work.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct ReplicaIndex(pub u32);

/// Identifier of a client transaction: the issuing client plus a
/// client-local monotonically increasing counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId {
    /// The client that issued the transaction.
    pub client: ClientId,
    /// Client-local request counter (starts at 0).
    pub counter: u64,
}

/// Address of any component in the architecture `A = {C, R, E, S, V}`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentId {
    /// A client (edge application user).
    Client(ClientId),
    /// A shim node (edge device participating in consensus).
    Node(NodeId),
    /// A serverless executor.
    Executor(ExecutorId),
    /// The trusted verifier `V`.
    Verifier,
    /// The trusted on-premise storage `S`.
    Storage,
    /// The serverless cloud control plane (receives spawn requests).
    Cloud,
}

impl NodeId {
    /// Returns the primary node of `view` for a shim of `n` nodes.
    #[must_use]
    pub fn primary_of(view: ViewNumber, n: usize) -> NodeId {
        assert!(n > 0, "shim must have at least one node");
        NodeId((view.0 % n as u64) as u32)
    }

    /// Whether this node is the primary of `view` in a shim of `n` nodes.
    #[must_use]
    pub fn is_primary_of(self, view: ViewNumber, n: usize) -> bool {
        Self::primary_of(view, n) == self
    }
}

impl ViewNumber {
    /// The next view (used when a view change replaces the primary).
    #[must_use]
    pub fn next(self) -> ViewNumber {
        ViewNumber(self.0 + 1)
    }
}

impl SeqNum {
    /// The next sequence number in order.
    #[must_use]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl TxnId {
    /// Creates a transaction identifier.
    #[must_use]
    pub fn new(client: ClientId, counter: u64) -> Self {
        TxnId { client, counter }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

impl From<u64> for ExecutorId {
    fn from(v: u64) -> Self {
        ExecutorId(v)
    }
}

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Debug for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Display for ExecutorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T({},{})", self.client, self.counter)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentId::Client(c) => write!(f, "{c}"),
            ComponentId::Node(n) => write!(f, "{n}"),
            ComponentId::Executor(e) => write!(f, "{e}"),
            ComponentId::Verifier => write!(f, "V"),
            ComponentId::Storage => write!(f, "S"),
            ComponentId::Cloud => write!(f, "Cloud"),
        }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

impl ComponentId {
    /// Returns the shim node identifier if this component is a shim node.
    #[must_use]
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            ComponentId::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the executor identifier if this component is an executor.
    #[must_use]
    pub fn as_executor(self) -> Option<ExecutorId> {
        match self {
            ComponentId::Executor(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the client identifier if this component is a client.
    #[must_use]
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            ComponentId::Client(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_rotates_with_view() {
        let n = 4;
        assert_eq!(NodeId::primary_of(ViewNumber(0), n), NodeId(0));
        assert_eq!(NodeId::primary_of(ViewNumber(1), n), NodeId(1));
        assert_eq!(NodeId::primary_of(ViewNumber(4), n), NodeId(0));
        assert_eq!(NodeId::primary_of(ViewNumber(7), n), NodeId(3));
    }

    #[test]
    fn is_primary_of_matches_primary_of() {
        for v in 0..10u64 {
            for id in 0..4u32 {
                let is = NodeId(id).is_primary_of(ViewNumber(v), 4);
                assert_eq!(is, NodeId::primary_of(ViewNumber(v), 4) == NodeId(id));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn primary_of_empty_shim_panics() {
        let _ = NodeId::primary_of(ViewNumber(0), 0);
    }

    #[test]
    fn view_and_seq_increment() {
        assert_eq!(ViewNumber(3).next(), ViewNumber(4));
        assert_eq!(SeqNum(7).next(), SeqNum(8));
    }

    #[test]
    fn txn_id_ordering_is_client_then_counter() {
        let a = TxnId::new(ClientId(1), 5);
        let b = TxnId::new(ClientId(2), 0);
        let c = TxnId::new(ClientId(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn component_accessors() {
        assert_eq!(ComponentId::Node(NodeId(3)).as_node(), Some(NodeId(3)));
        assert_eq!(ComponentId::Verifier.as_node(), None);
        assert_eq!(
            ComponentId::Executor(ExecutorId(9)).as_executor(),
            Some(ExecutorId(9))
        );
        assert_eq!(
            ComponentId::Client(ClientId(2)).as_client(),
            Some(ClientId(2))
        );
        assert_eq!(ComponentId::Storage.as_client(), None);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(format!("{}", NodeId(2)), "R2");
        assert_eq!(format!("{}", ClientId(7)), "C7");
        assert_eq!(format!("{}", ExecutorId(11)), "E11");
        assert_eq!(format!("{}", ComponentId::Verifier), "V");
        assert_eq!(format!("{}", TxnId::new(ClientId(1), 2)), "T(C1,2)");
    }
}
