//! Constant-size digests and byte containers for signatures and MACs.
//!
//! The algorithms that *produce* these values (SHA-256, HMAC, the simulated
//! digital-signature scheme and threshold aggregation) live in
//! `sbft-crypto`; this module only defines the plain data containers so the
//! message types can be defined without a dependency cycle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Length in bytes of a collision-resistant digest `H(v)` (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// A constant-size digest `Δ = H(m)` of a message or batch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Digest(pub [u8; DIGEST_LEN]);

/// A digital signature `⟨m⟩_R` produced with a component's private key.
///
/// The simulated scheme in `sbft-crypto` produces 64-byte signatures, the
/// same length as Ed25519, so wire-size accounting matches the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 64]);

impl Serialize for Signature {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(&self.0)
    }
}

impl<'de> Deserialize<'de> for Signature {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SigVisitor;
        impl<'de> serde::de::Visitor<'de> for SigVisitor {
            type Value = Signature;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("64 signature bytes")
            }
            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Signature, E> {
                if v.len() != 64 {
                    return Err(E::invalid_length(v.len(), &self));
                }
                let mut out = [0u8; 64];
                out.copy_from_slice(v);
                Ok(Signature(out))
            }
            fn visit_seq<A: serde::de::SeqAccess<'de>>(
                self,
                mut seq: A,
            ) -> Result<Signature, A::Error> {
                let mut out = [0u8; 64];
                for (i, byte) in out.iter_mut().enumerate() {
                    *byte = seq
                        .next_element()?
                        .ok_or_else(|| serde::de::Error::invalid_length(i, &self))?;
                }
                Ok(Signature(out))
            }
        }
        deserializer.deserialize_bytes(SigVisitor)
    }
}

/// A message authentication code tag computed with a shared secret key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacTag(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as a placeholder before hashing.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Builds a digest from raw bytes.
    #[must_use]
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// The raw digest bytes.
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// A short hexadecimal prefix used in log and debug output.
    #[must_use]
    pub fn short_hex(&self) -> String {
        self.0[..6].iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Whether this is the all-zero placeholder digest.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl Signature {
    /// The all-zero signature; only valid as a placeholder in tests.
    pub const ZERO: Signature = Signature([0u8; 64]);

    /// The raw signature bytes.
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; 64] {
        &self.0
    }

    /// Wire size of a digital signature in bytes.
    #[must_use]
    pub const fn wire_size() -> usize {
        64
    }
}

impl MacTag {
    /// The all-zero tag; only valid as a placeholder in tests.
    pub const ZERO: MacTag = MacTag([0u8; 32]);

    /// The raw MAC bytes.
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Wire size of a MAC tag in bytes.
    #[must_use]
    pub const fn wire_size() -> usize {
        32
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::ZERO
    }
}

impl Default for MacTag {
    fn default() -> Self {
        MacTag::ZERO
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::ZERO
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ({})", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Sig({prefix}…)")
    }
}

impl fmt::Debug for MacTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Mac({prefix}…)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_digest_is_zero() {
        assert!(Digest::ZERO.is_zero());
        let mut bytes = [0u8; DIGEST_LEN];
        bytes[31] = 1;
        assert!(!Digest::from_bytes(bytes).is_zero());
    }

    #[test]
    fn short_hex_is_twelve_chars() {
        let d = Digest::from_bytes([0xab; DIGEST_LEN]);
        assert_eq!(d.short_hex(), "abababababab");
        assert_eq!(d.short_hex().len(), 12);
    }

    #[test]
    fn wire_sizes_match_constants() {
        assert_eq!(Signature::wire_size(), 64);
        assert_eq!(MacTag::wire_size(), 32);
        assert_eq!(std::mem::size_of::<Digest>(), DIGEST_LEN);
    }

    #[test]
    fn debug_formats_do_not_dump_full_bytes() {
        let s = format!("{:?}", Signature::ZERO);
        assert!(s.len() < 20, "{s}");
        let m = format!("{:?}", MacTag::ZERO);
        assert!(m.len() < 20, "{m}");
    }

    #[test]
    fn digest_equality_and_ordering() {
        let a = Digest::from_bytes([1; DIGEST_LEN]);
        let b = Digest::from_bytes([2; DIGEST_LEN]);
        assert!(a < b);
        assert_ne!(a, b);
        assert_eq!(a, Digest::from_bytes([1; DIGEST_LEN]));
    }
}
