//! # sbft-types
//!
//! Shared vocabulary for the ServerlessBFT serverless-edge architecture.
//!
//! The architecture `A = {C, R, E, S, V}` of the paper is reflected in the
//! identifier types of [`ids`]: clients `C`, shim nodes `R`, serverless
//! executors `E`, the storage `S` and the verifier `V`. Every other crate in
//! the workspace builds on the plain data types defined here:
//!
//! * [`transaction`] — client transactions, operations and results,
//! * [`rwset`] — keys, values, versions and read/write sets,
//! * [`batch`] — batches of client transactions ordered by the shim,
//! * [`digest`] — constant-size digests, signature and MAC byte containers
//!   (the algorithms live in `sbft-crypto`),
//! * [`config`] — fault-tolerance parameters (`n_R`, `f_R`, `n_E`, `f_E`),
//!   timer settings and the full system configuration,
//! * [`region`] — the eleven cloud regions used in the evaluation,
//! * [`time`] — virtual time used by the simulator and protocol timers,
//! * [`error`] — the common error type.
//!
//! Keeping these types dependency-free (except `serde`) lets the protocol
//! state machines, the discrete-event simulator and the thread runtime all
//! speak the same language without cyclic dependencies.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod batch;
pub mod config;
pub mod digest;
pub mod error;
pub mod ids;
pub mod plan;
pub mod region;
pub mod rwset;
pub mod time;
pub mod transaction;

pub use batch::{Batch, BatchId};
pub use config::{
    ConflictHandling, CrossShardPolicy, DurabilityConfig, FaultParams, ShardingConfig,
    SpawningMode, SystemConfig, TimerConfig, WorkloadConfig,
};
pub use digest::{Digest, MacTag, Signature, DIGEST_LEN};
pub use error::{SbftError, SbftResult};
pub use ids::{
    ClientId, ComponentId, ExecutorId, NodeId, ReplicaIndex, SeqNum, ShardId, TxnId, ViewNumber,
};
pub use plan::ShardPlan;
pub use region::{Region, RegionPartition, RegionSet};
pub use rwset::{Key, KeySet, ReadWriteSet, RwSetKeys, Value, Version};
pub use time::{SimDuration, SimTime};
pub use transaction::{Operation, Transaction, TxnOutcome, TxnResult};
