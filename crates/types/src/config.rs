//! System configuration: fault-tolerance parameters, timers and modes.
//!
//! The fault model of the paper (Section III): a shim of `n_R ≥ 3f_R + 1`
//! edge nodes of which at most `f_R` are byzantine, and `n_E ≥ 2f_E + 1`
//! spawned executors of which at most `f_E` are byzantine
//! (`n_E ≥ 3f_E + 1` when transactions conflict and read-write sets are
//! unknown, Theorem VI.2).

use crate::error::{SbftError, SbftResult};
use crate::region::RegionSet;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Fault-tolerance parameters for the shim and the serverless executors.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultParams {
    /// Number of shim (edge) nodes `n_R`.
    pub n_r: usize,
    /// Maximum number of byzantine shim nodes `f_R`.
    pub f_r: usize,
    /// Number of executors spawned per batch `n_E`.
    pub n_e: usize,
    /// Maximum number of byzantine executors `f_E`.
    pub f_e: usize,
}

impl FaultParams {
    /// Parameters for a shim of `n_r` nodes with the maximum tolerated
    /// `f_R = ⌊(n_R - 1)/3⌋` and the paper's default of three executors
    /// (`f_E = 1`).
    ///
    /// # Panics
    /// Panics if `n_r < 4` (a BFT shim needs at least `3·1 + 1` nodes).
    #[must_use]
    pub fn for_shim_size(n_r: usize) -> Self {
        assert!(n_r >= 4, "a BFT shim needs at least 4 nodes");
        FaultParams {
            n_r,
            f_r: (n_r - 1) / 3,
            n_e: 3,
            f_e: 1,
        }
    }

    /// Overrides the number of executors spawned per batch, deriving the
    /// maximum `f_E = ⌊(n_E - 1)/2⌋` (non-conflicting case).
    #[must_use]
    pub fn with_executors(mut self, n_e: usize) -> Self {
        assert!(n_e >= 1, "at least one executor must be spawned");
        self.n_e = n_e;
        self.f_e = if n_e >= 3 { (n_e - 1) / 2 } else { 0 };
        self
    }

    /// Overrides the executor fault bound explicitly.
    #[must_use]
    pub fn with_executor_faults(mut self, f_e: usize) -> Self {
        self.f_e = f_e;
        self
    }

    /// The shim quorum `2f_R + 1` needed to prepare/commit a request and to
    /// build an execution certificate.
    #[must_use]
    pub fn shim_quorum(&self) -> usize {
        2 * self.f_r + 1
    }

    /// Number of matching `VERIFY` messages the verifier waits for
    /// (`f_E + 1`).
    #[must_use]
    pub fn verify_quorum(&self) -> usize {
        self.f_e + 1
    }

    /// Number of `VERIFY` messages below which the verifier blames the
    /// primary when its abort timer fires (`2f_E + 1`, Section VI-B).
    #[must_use]
    pub fn verify_blame_threshold(&self) -> usize {
        2 * self.f_e + 1
    }

    /// Executors the primary must spawn when read-write sets are unknown and
    /// transactions may conflict: `3f_E + 1` (Theorem VI.2).
    #[must_use]
    pub fn executors_for_conflicts(&self) -> usize {
        3 * self.f_e + 1
    }

    /// View-change quorum (`2f_R + 1` VIEWCHANGE messages).
    #[must_use]
    pub fn view_change_quorum(&self) -> usize {
        2 * self.f_r + 1
    }

    /// Executors each shim node spawns under decentralized spawning,
    /// Equation (1) of the paper: `1` if `n_E ≤ n_R`, else
    /// `⌈n_E / (2f_R + 1)⌉`.
    #[must_use]
    pub fn decentralized_spawn_count(&self) -> usize {
        if self.n_e <= self.n_r {
            1
        } else {
            self.n_e.div_ceil(2 * self.f_r + 1)
        }
    }

    /// Executors each shim node spawns under decentralized spawning when up
    /// to `f_R` honest nodes may be in the dark, Equation (2):
    /// `1` if `n_E ≤ n_R`, else `⌈n_E / (f_R + 1)⌉`.
    #[must_use]
    pub fn decentralized_spawn_count_dark(&self) -> usize {
        if self.n_e <= self.n_r {
            1
        } else {
            self.n_e.div_ceil(self.f_r + 1)
        }
    }

    /// Checks the BFT resilience conditions `n_R ≥ 3f_R + 1` and
    /// `n_E ≥ 2f_E + 1`.
    pub fn validate(&self) -> SbftResult<()> {
        if self.n_r < 3 * self.f_r + 1 {
            return Err(SbftError::InvalidConfig(format!(
                "shim needs n_R ≥ 3f_R + 1 (got n_R={}, f_R={})",
                self.n_r, self.f_r
            )));
        }
        if self.n_e < 2 * self.f_e + 1 {
            return Err(SbftError::InvalidConfig(format!(
                "executors need n_E ≥ 2f_E + 1 (got n_E={}, f_E={})",
                self.n_e, self.f_e
            )));
        }
        Ok(())
    }
}

/// Protocol timers (Section V-A). All durations are virtual time.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TimerConfig {
    /// Client timer `τ_m`: started before sending a request to the primary,
    /// stopped on receiving the verifier's `RESPONSE`.
    pub client_timeout: SimDuration,
    /// Node timer `τ_m`: started when a well-formed `PREPREPARE` is
    /// received, stopped when the request commits.
    pub node_timeout: SimDuration,
    /// Node re-transmission timer `Υ`: started when an `ERROR` message from
    /// the verifier is forwarded to the primary, stopped on the matching
    /// `ACK`.
    pub retransmit_timeout: SimDuration,
    /// Verifier abort-detection timer: started on the first `VERIFY`
    /// message for a conflicting transaction (Section VI-B).
    pub verifier_abort_timeout: SimDuration,
    /// Exponential back-off factor applied to the client timer on every
    /// re-transmission to the verifier.
    pub client_backoff_factor: f64,
    /// Featherweight checkpoint period, in committed sequence numbers.
    pub checkpoint_interval: u64,
    /// Probation period before an invoker that reactively marked a region
    /// down (after a `SpawnRejected` answer) tries the region again.
    pub region_probation: SimDuration,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            client_timeout: SimDuration::from_millis(2_000),
            node_timeout: SimDuration::from_millis(1_000),
            retransmit_timeout: SimDuration::from_millis(500),
            verifier_abort_timeout: SimDuration::from_millis(800),
            client_backoff_factor: 2.0,
            checkpoint_interval: 100,
            region_probation: SimDuration::from_millis(200),
        }
    }
}

/// Configuration of the durability subsystem (`sbft-durability`): the
/// write-ahead log each shim replica appends to and the featherweight
/// snapshot rhythm that truncates it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Whether shim replicas keep a write-ahead log at all. Off by
    /// default: the paper's replicas are purely in-memory, and the WAL
    /// adds an fsync to the commit-vote path.
    pub enabled: bool,
    /// Snapshot period, in committed sequence numbers: every
    /// `snapshot_interval` commits the replica cuts a
    /// featherweight-snapshot mark and truncates its log below it.
    pub snapshot_interval: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: false,
            snapshot_interval: 8,
        }
    }
}

impl DurabilityConfig {
    /// Durability enabled with the default snapshot rhythm.
    #[must_use]
    pub fn enabled() -> Self {
        DurabilityConfig {
            enabled: true,
            ..DurabilityConfig::default()
        }
    }

    /// Overrides the snapshot period.
    #[must_use]
    pub fn with_snapshot_interval(mut self, interval: u64) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Checks the snapshot rhythm is usable.
    pub fn validate(&self) -> SbftResult<()> {
        if self.enabled && self.snapshot_interval == 0 {
            return Err(SbftError::InvalidConfig(
                "durability needs a non-zero snapshot interval".into(),
            ));
        }
        Ok(())
    }
}

/// Who spawns serverless executors after a request commits (Section VI-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SpawningMode {
    /// Only the primary of the current view spawns executors (default).
    PrimaryOnly,
    /// Every shim node spawns `e` executors on commit, preventing byzantine
    /// aborts at the cost of over-spawning (Equations (1)/(2)).
    Decentralized,
}

/// How transactional conflicts are handled (Section VI).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ConflictHandling {
    /// Workload is non-conflicting; the verifier skips read-set validation.
    NonConflicting,
    /// Conflicts possible, read-write sets unknown before execution: spawn
    /// `3f_E + 1` executors, verifier validates read sets and may abort.
    UnknownRwSets,
    /// Read-write sets known: the primary runs the best-effort
    /// conflict-avoidance planner (deterministic-database style queueing).
    KnownRwSets,
}

/// How transactions whose read-write sets span execution shards are
/// handled by the sharded commit path (`sbft-sharding`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CrossShardPolicy {
    /// Two-phase, lock-ordered execution: acquire every involved shard's
    /// execution lock in ascending shard order, validate all reads, apply
    /// all writes. Preserves unsharded OCC semantics (default).
    LockOrdered,
    /// Strict isolation: cross-shard transactions are rejected outright.
    /// Useful to measure the cost of coordination.
    Abort,
}

/// Configuration of the sharded execution subsystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShardingConfig {
    /// Number of execution shards the key space is partitioned into.
    pub num_shards: usize,
    /// Worker threads (simulated cores per shard station, or pool threads
    /// in the thread runtime) draining the shard queues.
    pub workers: usize,
    /// What to do with transactions that span shards.
    pub cross_shard_policy: CrossShardPolicy,
    /// Whether the primary runs the **ordering-time shard planner**:
    /// with known read-write sets and more than one shard, the batcher
    /// assembles per-shard ordering lanes so single-home batches reach
    /// the verifier already conflict-free per shard (tagged with a
    /// [`crate::ShardPlan`]). Disable to measure the PR 3 baseline where
    /// cross-home batches are only discovered at apply time.
    pub ordering_lanes: bool,
    /// Whether storage is **geo-partitioned**: every shard's partition
    /// lives in a home region (the deterministic
    /// [`crate::RegionPartition`] over the deployment's region set), and
    /// an executor pays inter-region latency whenever it fetches keys
    /// homed outside its own region. Off by default — the paper's setup
    /// keeps all storage at the home site.
    pub geo_partitioned: bool,
    /// Whether the invoker consumes the replicated [`crate::ShardPlan`]
    /// for spawn placement: a `SingleHome` batch's executors are pinned
    /// to its shard's home region (with deterministic round-robin
    /// fallback when that region is faulted or lacks spawn capacity);
    /// cross-home and untagged batches keep the paper's round-robin
    /// rotation. Only meaningful when `geo_partitioned` is set — without
    /// partitioned storage there is nothing to be near. Placement is a
    /// pure performance hint: outcomes are proven identical either way.
    pub pinned_placement: bool,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        // One shard with one worker reproduces the paper's single
        // verifier/storage funnel exactly.
        ShardingConfig {
            num_shards: 1,
            workers: 1,
            cross_shard_policy: CrossShardPolicy::LockOrdered,
            ordering_lanes: true,
            geo_partitioned: false,
            pinned_placement: true,
        }
    }
}

impl ShardingConfig {
    /// A configuration with `num_shards` shards, one worker each.
    #[must_use]
    pub fn with_shards(num_shards: usize) -> Self {
        ShardingConfig {
            num_shards,
            ..ShardingConfig::default()
        }
    }

    /// Overrides the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables geo-partitioned storage (shard partitions homed across the
    /// deployment's regions).
    #[must_use]
    pub fn with_geo_partitioning(mut self) -> Self {
        self.geo_partitioned = true;
        self
    }

    /// Overrides plan-aware spawn placement (the round-robin baseline of
    /// the `placement_points` sweep sets this to `false`).
    #[must_use]
    pub fn with_pinned_placement(mut self, pinned: bool) -> Self {
        self.pinned_placement = pinned;
        self
    }

    /// Checks that the shard and worker counts are usable.
    pub fn validate(&self) -> SbftResult<()> {
        if self.num_shards == 0 {
            return Err(SbftError::InvalidConfig(
                "sharding needs at least one shard".into(),
            ));
        }
        if self.workers == 0 {
            return Err(SbftError::InvalidConfig(
                "sharding needs at least one worker".into(),
            ));
        }
        Ok(())
    }
}

/// Workload parameters shared by the harnesses (full generators live in
/// `sbft-workloads`).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of records in the YCSB store (600 k in the paper).
    pub num_records: u64,
    /// Number of concurrently issuing clients.
    pub num_clients: usize,
    /// Client transactions per consensus batch.
    pub batch_size: usize,
    /// Fraction of transactions that conflict with another in-flight
    /// transaction (0.0 – 0.5 in Figure 6(xi)).
    pub conflict_fraction: f64,
    /// Modeled per-transaction execution cost.
    pub execution_cost: SimDuration,
    /// Fraction of operations that are writes.
    pub write_fraction: f64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_records: 600_000,
            num_clients: 16_000,
            batch_size: 100,
            conflict_fraction: 0.0,
            execution_cost: SimDuration::from_micros(50),
            write_fraction: 0.5,
            ops_per_txn: 1,
        }
    }
}

/// Full configuration of a serverless-edge deployment.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Fault-tolerance parameters.
    pub fault: FaultParams,
    /// Regions in which executors may be spawned.
    pub regions: RegionSet,
    /// Protocol timer settings.
    pub timers: TimerConfig,
    /// Spawning mode (primary-only vs decentralized).
    pub spawning: SpawningMode,
    /// Conflict-handling mode.
    pub conflict_handling: ConflictHandling,
    /// Number of cores available on each shim node (Figure 6(ix)).
    pub shim_cores: usize,
    /// Number of cores available to the verifier.
    pub verifier_cores: usize,
    /// Workload parameters.
    pub workload: WorkloadConfig,
    /// Whether the shim batches client requests before ordering them.
    pub batching_enabled: bool,
    /// Sharded-execution parameters for the verifier's commit path.
    pub sharding: ShardingConfig,
    /// Write-ahead-log and snapshot parameters for shim replicas.
    pub durability: DurabilityConfig,
    /// Whether the primary proposes batches by digest (txn ids + bloom
    /// filter) instead of shipping full bodies, with replicas
    /// reconstructing from their body caches and fetching only the bodies
    /// they miss. Bandwidth-frugal ordering; off by default.
    pub digest_proposals: bool,
}

impl SystemConfig {
    /// The paper's default medium configuration: SERVBFT-8 (8 shim nodes),
    /// 3 executors in 3 regions, batch size 100, 16-core shim nodes.
    #[must_use]
    pub fn servbft_8() -> Self {
        SystemConfig::with_shim_size(8)
    }

    /// The paper's large configuration: SERVBFT-32.
    #[must_use]
    pub fn servbft_32() -> Self {
        SystemConfig::with_shim_size(32)
    }

    /// A configuration with an arbitrary shim size and paper defaults for
    /// everything else.
    #[must_use]
    pub fn with_shim_size(n_r: usize) -> Self {
        SystemConfig {
            fault: FaultParams::for_shim_size(n_r),
            regions: RegionSet::first_n(3),
            timers: TimerConfig::default(),
            spawning: SpawningMode::PrimaryOnly,
            conflict_handling: ConflictHandling::NonConflicting,
            shim_cores: 16,
            verifier_cores: 8,
            workload: WorkloadConfig::default(),
            batching_enabled: true,
            sharding: ShardingConfig::default(),
            durability: DurabilityConfig::default(),
            digest_proposals: false,
        }
    }

    /// A tiny configuration (4 nodes, 3 executors, single region, small
    /// batches) convenient for unit and integration tests.
    #[must_use]
    pub fn small_test() -> Self {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.regions = RegionSet::home_only();
        cfg.workload.batch_size = 5;
        cfg.workload.num_clients = 8;
        cfg.workload.num_records = 1_000;
        cfg
    }

    /// Number of executors the primary must spawn for each batch given the
    /// conflict-handling mode (`2f_E + 1` normally, `3f_E + 1` when
    /// read-write sets are unknown and conflicts are possible).
    #[must_use]
    pub fn executors_per_batch(&self) -> usize {
        match self.conflict_handling {
            ConflictHandling::UnknownRwSets => {
                self.fault.n_e.max(self.fault.executors_for_conflicts())
            }
            _ => self.fault.n_e,
        }
    }

    /// Total executors spawned per committed batch across the whole shim:
    /// what the primary spawns under [`SpawningMode::PrimaryOnly`], or the
    /// sum of every node's spawns under [`SpawningMode::Decentralized`]
    /// (each of the `n_R` nodes spawns `decentralized_spawn_count()`).
    /// The verifier uses this to know when every spawned executor has
    /// answered.
    #[must_use]
    pub fn spawned_per_batch(&self) -> usize {
        match self.spawning {
            SpawningMode::PrimaryOnly => self.executors_per_batch(),
            SpawningMode::Decentralized => self.fault.n_r * self.fault.decentralized_spawn_count(),
        }
    }

    /// The geo-partitioning of the execution shards over this
    /// deployment's regions, when [`ShardingConfig::geo_partitioned`] is
    /// set. Every component derives the identical map from the shared
    /// configuration — nothing about placement is ever communicated.
    #[must_use]
    pub fn region_partition(&self) -> Option<crate::RegionPartition> {
        self.sharding
            .geo_partitioned
            .then(|| crate::RegionPartition::new(self.regions.clone(), self.sharding.num_shards))
    }

    /// Validates fault parameters, regions, sharding and workload settings.
    pub fn validate(&self) -> SbftResult<()> {
        self.fault.validate()?;
        self.sharding.validate()?;
        self.durability.validate()?;
        if self.shim_cores == 0 || self.verifier_cores == 0 {
            return Err(SbftError::InvalidConfig(
                "shim and verifier need at least one core".into(),
            ));
        }
        if self.workload.batch_size == 0 {
            return Err(SbftError::InvalidConfig("batch size cannot be zero".into()));
        }
        if !(0.0..=1.0).contains(&self.workload.conflict_fraction) {
            return Err(SbftError::InvalidConfig(
                "conflict fraction must lie in [0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.workload.write_fraction) {
            return Err(SbftError::InvalidConfig(
                "write fraction must lie in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shim_size_derives_max_faults() {
        assert_eq!(FaultParams::for_shim_size(4).f_r, 1);
        assert_eq!(FaultParams::for_shim_size(8).f_r, 2);
        assert_eq!(FaultParams::for_shim_size(32).f_r, 10);
        assert_eq!(FaultParams::for_shim_size(128).f_r, 42);
    }

    #[test]
    fn quorum_sizes_follow_paper() {
        let p = FaultParams::for_shim_size(8); // f_r = 2, n_e = 3, f_e = 1
        assert_eq!(p.shim_quorum(), 5);
        assert_eq!(p.verify_quorum(), 2);
        assert_eq!(p.verify_blame_threshold(), 3);
        assert_eq!(p.executors_for_conflicts(), 4);
        assert_eq!(p.view_change_quorum(), 5);
    }

    #[test]
    fn with_executors_derives_fe() {
        let p = FaultParams::for_shim_size(4).with_executors(11);
        assert_eq!(p.n_e, 11);
        assert_eq!(p.f_e, 5);
        let p1 = FaultParams::for_shim_size(4).with_executors(1);
        assert_eq!(p1.f_e, 0);
    }

    #[test]
    fn decentralized_spawn_equation_one() {
        // n_E ≤ n_R: one executor per node.
        let p = FaultParams::for_shim_size(8).with_executors(3);
        assert_eq!(p.decentralized_spawn_count(), 1);
        // n_E > n_R: ⌈n_E / (2f_R + 1)⌉.
        let p = FaultParams::for_shim_size(4).with_executors(9); // f_r=1, quorum=3
        assert_eq!(p.decentralized_spawn_count(), 3);
        let p = FaultParams::for_shim_size(4).with_executors(10);
        assert_eq!(p.decentralized_spawn_count(), 4);
    }

    #[test]
    fn decentralized_spawn_equation_two_with_dark_nodes() {
        let p = FaultParams::for_shim_size(4).with_executors(10); // f_r = 1
        assert_eq!(p.decentralized_spawn_count_dark(), 5);
        let p = FaultParams::for_shim_size(8).with_executors(3);
        assert_eq!(p.decentralized_spawn_count_dark(), 1);
    }

    #[test]
    fn validate_rejects_insufficient_replicas() {
        let mut p = FaultParams::for_shim_size(4);
        p.f_r = 2; // 4 < 3*2+1
        assert!(p.validate().is_err());
        let mut p = FaultParams::for_shim_size(4);
        p.n_e = 2;
        p.f_e = 1; // 2 < 3
        assert!(p.validate().is_err());
        assert!(FaultParams::for_shim_size(16).validate().is_ok());
    }

    #[test]
    fn default_configs_are_valid() {
        assert!(SystemConfig::servbft_8().validate().is_ok());
        assert!(SystemConfig::servbft_32().validate().is_ok());
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn executors_per_batch_accounts_for_conflict_mode() {
        let mut cfg = SystemConfig::servbft_8();
        assert_eq!(cfg.executors_per_batch(), 3);
        cfg.conflict_handling = ConflictHandling::UnknownRwSets;
        assert_eq!(cfg.executors_per_batch(), 4); // 3·1 + 1
        cfg.fault = cfg.fault.with_executors(11); // f_e = 5 → 16
        assert_eq!(cfg.executors_per_batch(), 16);
    }

    #[test]
    fn spawned_per_batch_accounts_for_spawning_mode() {
        let mut cfg = SystemConfig::with_shim_size(4); // n_e = 3, f_e = 1
        assert_eq!(cfg.spawned_per_batch(), 3);
        cfg.conflict_handling = ConflictHandling::UnknownRwSets;
        assert_eq!(cfg.spawned_per_batch(), 4); // 3f_E + 1
        cfg.conflict_handling = ConflictHandling::NonConflicting;
        cfg.spawning = SpawningMode::Decentralized;
        // Every one of the 4 nodes spawns decentralized_spawn_count() = 1.
        assert_eq!(cfg.spawned_per_batch(), 4);
    }

    #[test]
    fn sharding_config_validates_and_defaults_to_one_shard() {
        assert_eq!(ShardingConfig::default().num_shards, 1);
        assert!(ShardingConfig::with_shards(8).validate().is_ok());
        assert!(ShardingConfig::with_shards(0).validate().is_err());
        assert!(ShardingConfig::with_shards(2)
            .with_workers(0)
            .validate()
            .is_err());
    }

    #[test]
    fn geo_partitioning_is_off_by_default_and_derives_the_shared_map() {
        let mut cfg = SystemConfig::servbft_8();
        assert!(!cfg.sharding.geo_partitioned);
        assert!(cfg.sharding.pinned_placement);
        assert!(cfg.region_partition().is_none());
        cfg.sharding = ShardingConfig::with_shards(8).with_geo_partitioning();
        let part = cfg.region_partition().expect("geo map derived");
        assert_eq!(part.num_shards(), 8);
        assert_eq!(part.regions(), &cfg.regions);
        // The round-robin baseline keeps the partition but not the pin.
        cfg.sharding = cfg.sharding.with_pinned_placement(false);
        assert!(cfg.region_partition().is_some());
        assert!(!cfg.sharding.pinned_placement);
    }

    #[test]
    fn validate_rejects_bad_workload() {
        let mut cfg = SystemConfig::small_test();
        cfg.workload.conflict_fraction = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.workload.batch_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SystemConfig::small_test();
        cfg.shim_cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn durability_defaults_off_and_validates_interval() {
        let cfg = SystemConfig::servbft_8();
        assert!(!cfg.durability.enabled);
        assert!(DurabilityConfig::enabled().enabled);
        let mut cfg = SystemConfig::small_test();
        cfg.durability = DurabilityConfig::enabled().with_snapshot_interval(0);
        assert!(cfg.validate().is_err());
        cfg.durability = DurabilityConfig::enabled().with_snapshot_interval(4);
        assert!(cfg.validate().is_ok());
        // Disabled durability never rejects, whatever the interval.
        cfg.durability = DurabilityConfig {
            enabled: false,
            snapshot_interval: 0,
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn default_timers_are_ordered_sensibly() {
        let t = TimerConfig::default();
        assert!(t.client_timeout > t.node_timeout);
        assert!(t.node_timeout > t.retransmit_timeout);
        assert!(t.client_backoff_factor > 1.0);
    }
}
