//! The network model.
//!
//! The shim nodes, clients, verifier and storage sit in the home site
//! (North California, where the paper deploys its OCI machines with 10 GiB
//! NICs); executors run in whichever region they were spawned in. A
//! message's delivery delay is propagation (per the region latency table)
//! plus transmission (size divided by the NIC bandwidth), plus a small
//! fixed per-message overhead for the socket stack.

use sbft_types::{Region, SimDuration};

/// Propagation/transmission parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// One-way latency between two components in the home site.
    pub local_latency: SimDuration,
    /// Fixed per-message software overhead (socket, syscalls).
    pub per_message_overhead: SimDuration,
    /// NIC bandwidth in bytes per second (10 GiB NICs in the paper).
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            local_latency: SimDuration::from_micros(250),
            per_message_overhead: SimDuration::from_micros(15),
            bandwidth_bytes_per_sec: 10.0 * 1024.0 * 1024.0 * 1024.0 / 8.0,
        }
    }
}

impl NetworkModel {
    /// Transmission time of a message of `bytes` bytes.
    #[must_use]
    pub fn transmission(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Delay for a message exchanged inside the home site (client ↔ shim ↔
    /// verifier ↔ storage).
    #[must_use]
    pub fn local_delay(&self, bytes: usize) -> SimDuration {
        self.local_latency + self.per_message_overhead + self.transmission(bytes)
    }

    /// Delay for a message between the home site and an executor running in
    /// `region`.
    #[must_use]
    pub fn region_delay(&self, region: Region, bytes: usize) -> SimDuration {
        let propagation =
            SimDuration::from_secs_f64(region.one_way_latency_ms_from_home() / 1000.0);
        propagation + self.per_message_overhead + self.transmission(bytes)
    }

    /// One-way propagation between two arbitrary regions. Within a region
    /// it is the local (home-site) latency; across regions the model
    /// routes over the home-site backbone (the triangle through North
    /// California the latency table is anchored to), summing both legs.
    /// Only the relative ordering matters — what the geo experiments need
    /// is that a same-region storage fetch is far cheaper than any
    /// cross-region one.
    #[must_use]
    pub fn inter_region_one_way(&self, a: Region, b: Region) -> SimDuration {
        if a == b {
            return self.local_latency;
        }
        SimDuration::from_secs_f64(
            (a.one_way_latency_ms_from_home() + b.one_way_latency_ms_from_home()) / 1000.0,
        )
    }

    /// Delay for a message between components in two (possibly equal)
    /// regions — e.g. an executor fetching from a geo-partitioned storage
    /// partition homed elsewhere.
    #[must_use]
    pub fn inter_region_delay(&self, a: Region, b: Region, bytes: usize) -> SimDuration {
        self.inter_region_one_way(a, b) + self.per_message_overhead + self.transmission(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_delay_is_dominated_by_latency_for_small_messages() {
        let net = NetworkModel::default();
        let d = net.local_delay(200);
        assert!(d >= net.local_latency);
        assert!(d < SimDuration::from_millis(1));
    }

    #[test]
    fn transmission_grows_linearly_with_size() {
        // Exact proportionality: 1000× the bytes must take 1000× the
        // time. The earlier form of this assertion had an `|| big > small`
        // escape hatch that made it a tautology. Sizes are large enough
        // that `SimDuration`'s microsecond grid cannot mask a broken
        // bytes→delay mapping (10 MB already transmits for ~7450 µs).
        let net = NetworkModel::default();
        let small = net.transmission(10_000_000);
        let big = net.transmission(10_000_000_000);
        assert!(big > small);
        let ratio = big.as_secs_f64() / small.as_secs_f64();
        assert!(
            (ratio - 1000.0).abs() < 1.0,
            "transmission must scale linearly with size, got ratio {ratio}"
        );
    }

    #[test]
    fn remote_regions_are_slower_than_home() {
        let net = NetworkModel::default();
        let home = net.region_delay(Region::NorthCalifornia, 1_000);
        let singapore = net.region_delay(Region::Singapore, 1_000);
        assert!(singapore > home);
        assert!(singapore >= SimDuration::from_millis(80));
    }

    #[test]
    fn big_batches_cost_more_to_ship() {
        let net = NetworkModel::default();
        assert!(net.local_delay(8_000 * 53) > net.local_delay(100 * 53));
    }

    #[test]
    fn inter_region_latency_is_symmetric_and_local_within_a_region() {
        let net = NetworkModel::default();
        assert_eq!(
            net.inter_region_one_way(Region::Oregon, Region::Oregon),
            net.local_latency,
            "a same-region fetch costs only the local hop"
        );
        assert_eq!(
            net.inter_region_one_way(Region::Oregon, Region::Seoul),
            net.inter_region_one_way(Region::Seoul, Region::Oregon),
        );
        // A cross-region fetch dwarfs a local one — the gap plan-aware
        // placement exists to close.
        assert!(
            net.inter_region_delay(Region::Oregon, Region::Seoul, 1_000)
                > net.inter_region_delay(Region::Oregon, Region::Oregon, 1_000)
                    + SimDuration::from_millis(50)
        );
    }
}
