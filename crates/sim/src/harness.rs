//! The discrete-event simulation harness.
//!
//! [`SimHarness`] drives a fully assembled [`sbft_core::System`] through
//! virtual time: it interprets the actions emitted by the role state
//! machines (sends, timers, executor spawns), applies the configured
//! byzantine attacks, models network and CPU delays, runs the closed-loop
//! client population, and collects [`RunMetrics`].

use crate::cpu::{CpuModel, ServiceStation};
use crate::faults::{FaultPlan, FaultState};
use crate::metrics::RunMetrics;
use crate::network::NetworkModel;
use sbft_core::events::{Action, Destination, Envelope, ProtocolMessage, ProtocolTimer};
use sbft_core::System;
use sbft_serverless::{CrashRestart, ExecuteRequest, ExecutorBehavior};
use sbft_storage::GeoPartitionedStore;
use sbft_telemetry::{Stage, TraceSink, Tracer};
use sbft_types::{
    ComponentId, ExecutorId, Region, SeqNum, SimDuration, SimTime, TxnId, TxnOutcome,
};
use sbft_workloads::{KeyDistribution, YcsbWorkload};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Parameters of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Length of the measured window (after warm-up).
    pub duration: SimDuration,
    /// Warm-up period excluded from the metrics.
    pub warmup: SimDuration,
    /// Number of closed-loop clients actively issuing requests (capped at
    /// the number of client roles in the system).
    pub num_clients: usize,
    /// Seed for the workload generator.
    pub seed: u64,
    /// How often the primary's batcher releases partial batches.
    pub batch_poll_interval: SimDuration,
    /// Safety cap on the number of processed events.
    pub max_events: u64,
    /// When set, executor compute time is serialised through a shared pool
    /// of this many execution threads instead of running fully in parallel.
    /// This models the paper's Figure 8 baselines where all execution
    /// happens on the edge devices with a fixed number of execution
    /// threads (`PBFT-k-ET`); `None` models serverless executors.
    pub edge_execution_threads: Option<usize>,
    /// When set, keys are drawn Zipfian with this exponent instead of
    /// uniformly (the skew axis of the planner experiments).
    pub zipf_theta: Option<f64>,
    /// When set, the given shim node crashes at the scheduled sim time
    /// (losing volatile state and the unsynced WAL tail), stays dark, and
    /// restarts after the configured delay — replaying its log and
    /// state-transferring the missing suffix from peers.
    pub crash: Option<CrashRestart>,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            duration: SimDuration::from_millis(400),
            warmup: SimDuration::from_millis(100),
            num_clients: 200,
            seed: 1,
            batch_poll_interval: SimDuration::from_millis(2),
            max_events: 20_000_000,
            edge_execution_threads: None,
            zipf_theta: None,
            crash: None,
        }
    }
}

/// What happens at a point in virtual time.
///
/// `Deliver` dominates the event volume, so its inline `ProtocolMessage`
/// is deliberately not boxed: the size skew costs a little queue memory
/// but saves an allocation on the hottest path.
#[allow(clippy::large_enum_variant)]
enum EventKind {
    Deliver {
        from: ComponentId,
        to: ComponentId,
        msg: ProtocolMessage,
    },
    Timer {
        owner: ComponentId,
        timer: ProtocolTimer,
        generation: u64,
    },
    ExecutorRun {
        executor: ExecutorId,
        region: Region,
        behavior: ExecutorBehavior,
        execute: Box<ExecuteRequest>,
    },
    BatchTick {
        node: usize,
    },
    /// The node's process dies: volatile state and the unsynced WAL tail
    /// are lost, and deliveries/timers to it are dropped until `Restart`.
    Crash {
        node: usize,
    },
    /// The node restarts and recovers from its durable log.
    Restart {
        node: usize,
    },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulator.
pub struct SimHarness {
    system: System,
    params: SimParams,
    network: NetworkModel,
    cpu: CpuModel,
    clock: SimTime,
    queue: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    events_processed: u64,
    stations: HashMap<ComponentId, ServiceStation>,
    /// One service station per execution shard: the verifier's `ccheck`
    /// work for a validated batch is charged here, so shard counts scale
    /// the commit path the way cores scale a node (Figure 6(ix)).
    shard_stations: Vec<ServiceStation>,
    timer_generation: HashMap<(ComponentId, ProtocolTimer), u64>,
    workload: YcsbWorkload,
    submit_times: HashMap<TxnId, SimTime>,
    /// Shared execution station for the edge-execution baselines.
    edge_execution: Option<ServiceStation>,
    /// Whether CLIENT-REQUEST service at a shim node includes the
    /// ordering-time shard-routing classification.
    charge_routing: bool,
    /// The region-partitioned storage view, when the deployment
    /// geo-partitions: executor ⇄ storage fetches are classified (and
    /// counted) through it and pay the inter-region round trip to every
    /// remote partition they touch.
    geo: Option<GeoPartitionedStore>,
    /// Per-batch memo of the distinct storage partitions its keys are
    /// homed in — classified once, reused by every spawned executor of
    /// the batch (including re-spawns).
    touched_partitions: HashMap<SeqNum, std::collections::BTreeSet<Region>>,
    /// Batch lifecycle tracer. Disabled by default: every marker site
    /// pays one branch and nothing else.
    tracer: Tracer,
    /// Admission times of requests at the primary — (arrival, admission
    /// done) — consumed when the request's batch is released into
    /// ordering. Only populated while tracing is enabled.
    ingest_times: HashMap<TxnId, (SimTime, SimTime)>,
    /// Node indices currently crashed: deliveries and timer firings to
    /// them are dropped until their `Restart` event.
    down: std::collections::BTreeSet<usize>,
    /// The instantiated chaos plan, when one was attached: consulted on
    /// every node-to-node send and every fsync.
    faults: Option<FaultState>,
    metrics: RunMetrics,
}

impl SimHarness {
    /// Creates a harness around a system.
    #[must_use]
    pub fn new(system: System, params: SimParams) -> Self {
        Self::with_models(system, params, NetworkModel::default(), CpuModel::default())
    }

    /// Creates a harness with explicit network and CPU models.
    #[must_use]
    pub fn with_models(
        system: System,
        params: SimParams,
        network: NetworkModel,
        cpu: CpuModel,
    ) -> Self {
        let mut workload_cfg = system.config.workload;
        workload_cfg.num_clients = params.num_clients.min(system.clients.len()).max(1);
        let declare = matches!(
            system.config.conflict_handling,
            sbft_types::ConflictHandling::KnownRwSets
        );
        let mut workload = YcsbWorkload::new(workload_cfg, params.seed)
            .with_distribution(KeyDistribution::Uniform)
            .with_declared_rwsets(declare);
        if let Some(theta) = params.zipf_theta {
            workload = workload.with_zipf_theta(theta);
        }
        // The ordering-time shard planner classifies every client request
        // at the primary; charge that routing work in the CPU model.
        let charge_routing = declare
            && system.config.sharding.num_shards > 1
            && system.config.sharding.ordering_lanes;
        let mut stations = HashMap::new();
        for node in &system.nodes {
            stations.insert(
                ComponentId::Node(node.id()),
                ServiceStation::new(system.config.shim_cores),
            );
        }
        stations.insert(
            ComponentId::Verifier,
            ServiceStation::new(system.config.verifier_cores),
        );
        let sharding = system.config.sharding;
        let shard_stations = (0..sharding.num_shards)
            .map(|_| ServiceStation::new(sharding.workers))
            .collect();
        let edge_execution = params.edge_execution_threads.map(ServiceStation::new);
        let geo = system.config.region_partition().map(|p| {
            let mut geo = GeoPartitionedStore::new(std::sync::Arc::clone(&system.storage), p);
            geo.register_metrics(&system.registry);
            geo
        });
        let metrics = RunMetrics::default();
        system
            .registry
            .bind_histogram("client.latency_us", metrics.latency.histogram());
        SimHarness {
            system,
            params,
            network,
            cpu,
            clock: SimTime::ZERO,
            queue: BinaryHeap::new(),
            event_seq: 0,
            events_processed: 0,
            stations,
            shard_stations,
            timer_generation: HashMap::new(),
            workload,
            submit_times: HashMap::new(),
            edge_execution,
            charge_routing,
            geo,
            touched_partitions: HashMap::new(),
            tracer: Tracer::disabled(),
            ingest_times: HashMap::new(),
            down: std::collections::BTreeSet::new(),
            faults: None,
            metrics,
        }
    }

    /// Enables batch lifecycle tracing into `sink`. Span events carry sim
    /// timestamps, so two identical runs trace identically.
    #[must_use]
    pub fn with_tracer(mut self, sink: std::sync::Arc<dyn TraceSink>) -> Self {
        self.tracer = Tracer::new(sink);
        self
    }

    /// Attaches a composable chaos plan: per-link loss / duplication /
    /// extra delay, directed partition windows, disk-lag stragglers and
    /// (possibly simultaneous) crash-restarts. The plan's random draws
    /// derive from the run seed, so the full fault schedule is
    /// reproducible; injections surface as `faults.*` counters.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(
            plan,
            self.params.seed,
            SimTime::ZERO,
            &self.system.registry,
        ));
        self
    }

    /// Read access to the system (after a run, for assertions).
    #[must_use]
    pub fn system(&self) -> &System {
        &self.system
    }

    fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.params.warmup + self.params.duration
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= SimTime::ZERO + self.params.warmup && t < self.end_time()
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.event_seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.event_seq,
            kind,
        }));
    }

    /// Runs the simulation to completion and returns the metrics.
    pub fn run(mut self) -> RunMetrics {
        let active_clients = self
            .params
            .num_clients
            .min(self.system.clients.len())
            .max(1);

        // Closed loop: every client issues its first request at t = 0.
        for c in 0..active_clients {
            let txn = self
                .workload
                .next_transaction(sbft_types::ClientId(c as u32));
            self.submit_times.insert(txn.id, SimTime::ZERO);
            let actions = self.system.clients[c].submit(txn);
            self.process_actions(
                ComponentId::Client(sbft_types::ClientId(c as u32)),
                SimTime::ZERO,
                actions,
            );
        }
        // Periodic batch ticks at every shim node (only the primary acts).
        for node in 0..self.system.nodes.len() {
            self.push_event(
                SimTime::ZERO + self.params.batch_poll_interval,
                EventKind::BatchTick { node },
            );
        }
        // The scheduled crash-restart faults: the single `SimParams`
        // crash plus everything the fault plan carries. The plan's
        // entries may overlap in time (simultaneous multi-node crashes).
        let mut crashes: Vec<CrashRestart> = self.params.crash.into_iter().collect();
        if let Some(faults) = &self.faults {
            crashes.extend_from_slice(faults.crashes());
        }
        for crash in crashes {
            let node = crash.node.0 as usize;
            if node < self.system.nodes.len() {
                self.push_event(SimTime::ZERO + crash.at, EventKind::Crash { node });
                self.push_event(
                    SimTime::ZERO + crash.at + crash.restart_after,
                    EventKind::Restart { node },
                );
            }
        }

        let hard_end = self.end_time() + SimDuration::from_millis(50);
        while let Some(Reverse(event)) = self.queue.pop() {
            if event.time > hard_end || self.events_processed >= self.params.max_events {
                break;
            }
            self.clock = event.time;
            self.events_processed += 1;
            self.handle_event(event);
        }

        self.metrics.measured_duration = self.params.duration;
        self.metrics.end_time = self.clock;
        self.metrics.executors_spawned = self.system.cloud.total_spawned();
        self.metrics.spawns_rejected = self.system.cloud.rejected();
        // Every component registered its counters into the system
        // registry at build time; the run report reads them back from
        // there (RunMetrics is a façade over the registry).
        let registry = &self.system.registry;
        self.metrics.divergent_aborts = registry.counter_value("verifier.divergent_aborts");
        self.metrics.validated_batches = registry.counter_value("verifier.validated_batches");
        self.metrics.single_home_batches = registry.counter_value("verifier.single_home_batches");
        self.metrics.planned_batches = registry.counter_value("verifier.planned_batches");
        self.metrics.plan_mismatches = registry.counter_value("verifier.plan_mismatches");
        self.metrics.pinned_spawns = registry.sum_counters("pinned_spawns");
        self.metrics.placement_fallbacks = registry.sum_counters("placement_fallbacks");
        if self.geo.is_some() {
            self.metrics.local_storage_fetches =
                registry.counter_value("storage.geo.local_fetches");
            self.metrics.remote_storage_fetches =
                registry.counter_value("storage.geo.remote_fetches");
        }
        self.metrics.wal_appends = registry.sum_counters("durability.wal_appends");
        self.metrics.snapshot_bytes = registry.sum_counters("durability.snapshot_bytes");
        self.metrics.replay_batches = registry.sum_counters("durability.replay_batches");
        self.metrics.state_transfer_batches =
            registry.sum_counters("durability.state_transfer_batches");
        self.metrics.recoveries = registry.counter_value("recovery.recoveries");
        self.metrics.messages_dropped = registry.counter_value("faults.messages_dropped");
        self.metrics.messages_duplicated = registry.counter_value("faults.messages_duplicated");
        self.metrics.messages_delayed = registry.counter_value("faults.messages_delayed");
        self.metrics.partition_drops = registry.counter_value("faults.partition_drops");
        self.metrics.fsync_lags = registry.counter_value("faults.fsync_lags");
        self.metrics.bad_state_responses = registry.sum_counters("faults.bad_state_responses");
        self.metrics.state_request_retries = registry.sum_counters("faults.state_request_retries");
        self.metrics.catch_ups = registry.sum_counters("faults.catch_ups");
        self.metrics.leader_egress_bytes = registry.counter_value("net.leader_egress_bytes");
        self.metrics.body_cache_hits = registry.sum_counters("digest.cache_hits");
        self.metrics.body_cache_misses = registry.sum_counters("digest.cache_misses");
        self.metrics.batch_fetches = registry.sum_counters("digest.fetches_sent");
        self.metrics
    }

    fn handle_event(&mut self, event: Event) {
        match event.kind {
            EventKind::Deliver { from, to, msg } => self.deliver(from, to, msg, event.time),
            EventKind::Timer {
                owner,
                timer,
                generation,
            } => {
                let current = self
                    .timer_generation
                    .get(&(owner, timer))
                    .copied()
                    .unwrap_or(0);
                if current != generation {
                    return; // cancelled or superseded
                }
                self.fire_timer(owner, timer, event.time);
            }
            EventKind::ExecutorRun {
                executor,
                region,
                behavior,
                execute,
            } => self.run_executor(executor, region, behavior, *execute, event.time),
            EventKind::BatchTick { node } => {
                let now = event.time;
                // A crashed node skips the poll but keeps its tick alive,
                // so batching resumes as soon as it restarts.
                if !self.down.contains(&node) {
                    let actions = self.system.nodes[node].poll_batcher(now);
                    let id = self.system.nodes[node].id();
                    let actions = self.system.injector.apply(id, actions);
                    self.process_actions(ComponentId::Node(id), now, actions);
                }
                if now < self.end_time() {
                    self.push_event(
                        now + self.params.batch_poll_interval,
                        EventKind::BatchTick { node },
                    );
                }
            }
            EventKind::Crash { node } => {
                self.down.insert(node);
                self.system.nodes[node].crash();
            }
            EventKind::Restart { node } => {
                self.down.remove(&node);
                let id = self.system.nodes[node].id();
                let actions = self.system.nodes[node].crash_restart();
                self.system.registry.counter("recovery.recoveries").inc();
                // The recover span: one event per recovery, keyed by the
                // restarting node (not part of the batch pipeline).
                self.tracer
                    .emit(u64::from(id.0), Stage::Recover, event.time);
                self.process_actions(ComponentId::Node(id), event.time, actions);
            }
        }
    }

    fn deliver(&mut self, from: ComponentId, to: ComponentId, msg: ProtocolMessage, now: SimTime) {
        // A crashed node is dark: anything addressed to it is lost.
        if let ComponentId::Node(node) = to {
            if self.down.contains(&(node.0 as usize)) {
                return;
            }
        }
        self.metrics.messages_delivered += 1;
        self.metrics.bytes_delivered += msg.wire_size() as u64;
        // CPU service at the receiving component.
        let cost =
            if let (ProtocolMessage::ClientRequest(req), ComponentId::Node(node)) = (&msg, to) {
                let is_primary = self
                    .system
                    .nodes
                    .get(node.0 as usize)
                    .is_some_and(sbft_core::ShimNode::is_primary);
                // The primary verifies client authentication as one aggregate
                // signature per batch (charged when the batch is released), so
                // admission pays only the per-request share; a non-primary
                // still verifies eagerly before forwarding.
                let mut cost = self.cpu.client_request_cost(msg.wire_size(), is_primary);
                if self.charge_routing && is_primary {
                    // Ordering-time shard routing: the primary classifies the
                    // declared read/write keys against the shard map (a
                    // forwarding non-primary never runs the classification).
                    let keys = req.txn.declared_rwset.as_ref().map_or_else(
                        || req.txn.num_ops(),
                        |rw| rw.read_keys.len() + rw.write_keys.len(),
                    );
                    cost += self.cpu.routing_cost(keys);
                }
                cost
            } else {
                self.cpu.message_cost(msg.kind(), msg.wire_size())
            };
        let done = match self.stations.get_mut(&to) {
            Some(station) => station.schedule(now, cost),
            None => now, // clients are not CPU-bound in the model
        };
        match to {
            ComponentId::Node(node_id) => {
                let idx = node_id.0 as usize;
                if idx >= self.system.nodes.len() {
                    return;
                }
                let actions = match &msg {
                    ProtocolMessage::ClientRequest(req) => {
                        if self.tracer.enabled() && self.system.nodes[idx].is_primary() {
                            // Remembered until the request's batch is
                            // released, then folded into its trace.
                            self.ingest_times.insert(req.txn.id, (now, done));
                        }
                        self.system.nodes[idx].on_client_request(req, done)
                    }
                    ProtocolMessage::Consensus(c) => {
                        if let Some(seq) = ordering_batch_seq(c) {
                            self.tracer.emit(seq.0, Stage::PrePrepare, done);
                        }
                        match from.as_node() {
                            Some(sender) => {
                                self.system.nodes[idx].on_consensus_message(sender, c.clone())
                            }
                            None => Vec::new(),
                        }
                    }
                    other => self.system.nodes[idx].on_message_at(other, done),
                };
                let actions = self.system.injector.apply(node_id, actions);
                self.process_actions(to, done, actions);
            }
            ComponentId::Verifier => {
                if let ProtocolMessage::Verify(v) = &msg {
                    self.tracer.emit(v.seq.0, Stage::VerifyIngest, now);
                }
                let actions = self.system.verifier.on_message(&msg);
                self.process_actions(to, done, actions);
            }
            ComponentId::Client(client_id) => {
                match &msg {
                    ProtocolMessage::Response(r) => {
                        self.tracer.emit(r.seq.0, Stage::Respond, now);
                    }
                    ProtocolMessage::Abort(a) => {
                        self.tracer.emit(a.seq.0, Stage::Respond, now);
                    }
                    _ => {}
                }
                let idx = client_id.0 as usize;
                if idx >= self.system.clients.len() {
                    return;
                }
                let actions = self.system.clients[idx].on_message(&msg);
                self.process_actions(to, done, actions);
            }
            _ => {}
        }
    }

    fn fire_timer(&mut self, owner: ComponentId, timer: ProtocolTimer, now: SimTime) {
        match owner {
            ComponentId::Node(node_id) => {
                let idx = node_id.0 as usize;
                if idx >= self.system.nodes.len() || self.down.contains(&idx) {
                    return;
                }
                let actions = self.system.nodes[idx].on_timer(timer, now);
                let actions = self.system.injector.apply(node_id, actions);
                self.process_actions(owner, now, actions);
            }
            ComponentId::Verifier => {
                let actions = self.system.verifier.on_timer(timer);
                self.process_actions(owner, now, actions);
            }
            ComponentId::Client(client_id) => {
                if let ProtocolTimer::ClientRequest(txn) = timer {
                    let idx = client_id.0 as usize;
                    if idx >= self.system.clients.len() {
                        return;
                    }
                    let actions = self.system.clients[idx].on_timeout(txn);
                    self.process_actions(owner, now, actions);
                }
            }
            _ => {}
        }
    }

    fn run_executor(
        &mut self,
        executor: ExecutorId,
        region: Region,
        behavior: ExecutorBehavior,
        execute: ExecuteRequest,
        now: SimTime,
    ) {
        let instance = self.system.make_executor_with(executor, region, behavior);
        let output = match instance.handle_execute(&execute) {
            Ok(output) => output,
            Err(_) => {
                self.system.cloud.release(executor);
                return;
            }
        };
        // The function's billable time: certificate validation + execution.
        let cert_cost = self.cpu.message_cost("EXECUTE", execute.wire_size());
        // Geo-partitioned storage: the executor bulk-fetches the batch's
        // read-write sets from every partition its keys are homed in.
        // Fetches to distinct partitions run in parallel, so the stall is
        // the worst round trip; a pinned executor whose batch is
        // single-home in its own region stalls only for the local hop.
        // The touched-partition set is a property of the batch alone, so
        // it is classified once per sequence number (every spawned
        // executor of the batch reuses it) through the storage view,
        // which also keeps the local/remote fetch counters.
        let fetch_stall = match &self.geo {
            Some(geo) => {
                let touched = self
                    .touched_partitions
                    .entry(execute.seq)
                    .or_insert_with(|| {
                        geo.regions_touched(
                            execute
                                .batch
                                .iter()
                                .flat_map(|t| t.ops.iter())
                                .map(|op| op.key()),
                        )
                    });
                let mut worst = SimDuration::ZERO;
                for home in touched.iter() {
                    let _remote = geo.record_partition_fetch(region, *home);
                    let rtt = self
                        .network
                        .inter_region_delay(region, *home, 256)
                        .saturating_mul(2);
                    worst = worst.max(rtt);
                }
                worst
            }
            None => SimDuration::ZERO,
        };
        let busy = cert_cost + fetch_stall + output.compute;
        self.metrics.executor_busy += busy;
        // Serverless executors run fully in parallel; the edge-execution
        // baselines funnel all execution through a fixed thread pool.
        let finished_at = match &mut self.edge_execution {
            Some(pool) => pool.schedule(now, busy),
            None => now + busy,
        };
        let busy = finished_at - now;
        let extra_delay = SimDuration::from_millis(behavior.extra_delay_ms());
        for verify in output.verify_messages {
            let msg = ProtocolMessage::Verify(verify);
            let delay = self.network.region_delay(region, msg.wire_size());
            self.push_event(
                now + busy + extra_delay + delay,
                EventKind::Deliver {
                    from: ComponentId::Executor(executor),
                    to: ComponentId::Verifier,
                    msg,
                },
            );
        }
        self.system.cloud.release(executor);
    }

    fn process_actions(&mut self, origin: ComponentId, now: SimTime, actions: Vec<Action>) {
        // Shard `ccheck` work announced in this action list gates the
        // sends that follow it: responses for a validated batch leave only
        // once every involved shard station has finished the batch's
        // validate-and-apply work. Unchained slices (single-home work) run
        // in parallel, each from `arrival`; chained slices are the
        // lock-ordered cross-shard staircase — shard i+1 starts only after
        // shard i grants, so `chain` carries the previous grant time. The
        // watermark `now` tracks the latest completion either way.
        let arrival = now;
        let mut chain = now;
        let mut now = now;
        // When the verifier's action list applies validated batches, the
        // whole list is their apply phase: mark each batch's start, the
        // shard slices, and (after the loop) each batch's end. One
        // quorum-completing VERIFY can release several queued batches
        // (ordered apply), so all of them are marked; the shard slices
        // are attributed to the first.
        let apply_seqs = if self.tracer.enabled() && origin == ComponentId::Verifier {
            let seqs = validated_batch_seqs(&actions);
            for seq in &seqs {
                self.tracer.emit(seq.0, Stage::ApplyStart, arrival);
            }
            seqs
        } else {
            Vec::new()
        };
        let apply_seq = apply_seqs.first().copied();
        for action in actions {
            match action {
                Action::ShardCcheck {
                    shard,
                    txns,
                    accesses,
                    planned,
                    chained,
                } => {
                    if self.shard_stations.is_empty() {
                        continue;
                    }
                    let idx = shard.0 as usize % self.shard_stations.len();
                    // The verified fast path skipped the per-transaction
                    // route sets and the probe key map; probed work pays
                    // for them.
                    let cost = if planned {
                        self.cpu.ccheck_cost(accesses as usize)
                    } else {
                        self.cpu
                            .ccheck_cost_probed(txns as usize, accesses as usize)
                    };
                    let start = if chained { chain } else { arrival };
                    let done = self.shard_stations[idx].schedule(start, cost);
                    if let Some(seq) = apply_seq {
                        self.tracer
                            .emit_shard(seq.0, Stage::ShardSliceStart, start, shard.0);
                        self.tracer
                            .emit_shard(seq.0, Stage::ShardSliceEnd, done, shard.0);
                    }
                    if chained {
                        chain = done;
                    }
                    now = now.max(done);
                }
                Action::Send(Envelope { from, to, msg }) => {
                    if let ProtocolMessage::Consensus(c) = &msg {
                        if let Some((seq, txn_ids)) = ordering_release(c) {
                            // Releasing a batch into ordering is where the
                            // primary verifies the one aggregate signature
                            // covering the batch's client authentication
                            // (the per-request share was charged at
                            // admission).
                            if let Some(station) = self.stations.get_mut(&origin) {
                                station.schedule(now, self.cpu.aggregate_batch_check_cost());
                            }
                            if self.tracer.enabled() {
                                self.mark_batch_release(seq, &txn_ids, now);
                            }
                        }
                    }
                    let targets: Vec<ComponentId> = match to {
                        // Digest-mode clients broadcast their requests to
                        // every shim node so replicas can seed the body
                        // caches that digest reconstruction reads from.
                        Destination::Node(_)
                            if self.system.config.digest_proposals
                                && matches!(msg, ProtocolMessage::ClientRequest(_))
                                && origin.as_node().is_none() =>
                        {
                            self.system
                                .nodes
                                .iter()
                                .map(|n| ComponentId::Node(n.id()))
                                .collect()
                        }
                        Destination::Node(n) => vec![ComponentId::Node(n)],
                        Destination::AllNodes => self
                            .system
                            .nodes
                            .iter()
                            .map(|n| ComponentId::Node(n.id()))
                            .filter(|c| *c != origin)
                            .collect(),
                        Destination::Client(c) => vec![ComponentId::Client(c)],
                        Destination::Executor(e) => vec![ComponentId::Executor(e)],
                        Destination::Verifier => vec![ComponentId::Verifier],
                    };
                    // Sender-side egress accounting for node-to-node
                    // (ordering) traffic, charged per target before the
                    // fault plan arbitrates delivery. The leader counter is
                    // what the bandwidth-frugal mode exists to shrink.
                    if let Some(src) = origin.as_node() {
                        let node_targets = targets
                            .iter()
                            .filter(|t| matches!(t, ComponentId::Node(_)))
                            .count();
                        if node_targets > 0 {
                            let bytes = (msg.wire_size() * node_targets) as u64;
                            let registry = &self.system.registry;
                            registry
                                .counter(&format!("net.{}.egress_bytes", src.0))
                                .add(bytes);
                            let is_leader = self
                                .system
                                .nodes
                                .get(src.0 as usize)
                                .is_some_and(|n| n.primary() == src);
                            if is_leader {
                                registry.counter("net.leader_egress_bytes").add(bytes);
                            }
                        }
                    }
                    for target in targets {
                        let delay = self.network.local_delay(msg.wire_size());
                        // The chaos layer arbitrates node-to-node links
                        // only: client, executor and verifier traffic is
                        // out of scope for the fault plan. Each returned
                        // entry is one delivered copy (empty = dropped).
                        let copies: Vec<SimDuration> =
                            match (self.faults.as_mut(), origin.as_node(), target) {
                                (Some(faults), Some(src), ComponentId::Node(dst)) => {
                                    faults.deliveries(src, dst, now)
                                }
                                _ => vec![SimDuration::ZERO],
                            };
                        for extra in copies {
                            self.push_event(
                                now + delay + extra,
                                EventKind::Deliver {
                                    from,
                                    to: target,
                                    msg: msg.clone(),
                                },
                            );
                        }
                    }
                }
                Action::StartTimer { timer, duration } => {
                    let entry = self.timer_generation.entry((origin, timer)).or_insert(0);
                    *entry += 1;
                    let generation = *entry;
                    self.push_event(
                        now + duration,
                        EventKind::Timer {
                            owner: origin,
                            timer,
                            generation,
                        },
                    );
                }
                Action::CancelTimer(timer) => {
                    *self.timer_generation.entry((origin, timer)).or_insert(0) += 1;
                }
                Action::Persist { bytes, fsync } => {
                    // WAL writes run on the component's own station and
                    // gate every later action in this list: a synced vote
                    // is durable before its COMMIT leaves the node. A
                    // fault-plan disk-lag straggler stretches the fsync
                    // beyond the CPU model's fixed cost.
                    let lag = match (self.faults.as_mut(), fsync, origin.as_node()) {
                        (Some(faults), true, Some(node)) => faults.fsync_extra(node),
                        _ => SimDuration::ZERO,
                    };
                    if let Some(station) = self.stations.get_mut(&origin) {
                        let done = station.schedule(now, self.cpu.persist_cost(bytes, fsync) + lag);
                        now = now.max(done);
                    }
                }
                Action::SpawnExecutor { request, execute } => {
                    self.tracer.emit(execute.seq.0, Stage::ExecuteSpawn, now);
                    let spawn_region = request.region;
                    // Issuing the spawn costs CPU at the spawning node (the
                    // invoker signs and ships the request to the provider).
                    let spawn_issue_done = match self.stations.get_mut(&origin) {
                        Some(station) => station.schedule(now, self.cpu.spawn_cost),
                        None => now,
                    };
                    match self.system.cloud.spawn(request) {
                        Ok(outcome) => {
                            let spawn_delay = match origin.as_node() {
                                Some(node) => self.system.injector.spawn_delay(node),
                                None => SimDuration::ZERO,
                            };
                            let now = spawn_issue_done;
                            let ship = self
                                .network
                                .region_delay(outcome.region, execute.wire_size());
                            self.push_event(
                                now + spawn_delay + outcome.cold_start + ship,
                                EventKind::ExecutorRun {
                                    executor: outcome.executor,
                                    region: outcome.region,
                                    behavior: outcome.behavior,
                                    execute: Box::new(execute),
                                },
                            );
                        }
                        Err(_) => {
                            // Rejected; counted at the end of the run from
                            // the cloud's stats. If the cause is a region
                            // outage, the rejection doubles as the reactive
                            // outage signal: the spawning node marks the
                            // region down and probes it again later.
                            if self.system.cloud.region_is_down(spawn_region) {
                                if let Some(node) = origin.as_node() {
                                    let idx = node.0 as usize;
                                    if idx < self.system.nodes.len() {
                                        let reactions =
                                            self.system.nodes[idx].on_spawn_rejected(spawn_region);
                                        self.process_actions(origin, spawn_issue_done, reactions);
                                    }
                                }
                            }
                        }
                    }
                }
                Action::TxnCompleted { txn, outcome } => {
                    if self.in_window(now) {
                        match outcome {
                            TxnOutcome::Committed => self.metrics.committed_txns += 1,
                            TxnOutcome::Aborted => self.metrics.aborted_txns += 1,
                        }
                        if let Some(submitted) = self.submit_times.get(&txn) {
                            self.metrics.latency.record(now.since(*submitted));
                        }
                    }
                    self.submit_times.remove(&txn);
                    // Closed loop: the client immediately issues its next
                    // request (Section IX, Setup).
                    if now < self.end_time() {
                        let client = txn.client;
                        let idx = client.0 as usize;
                        if idx < self.system.clients.len() {
                            let next = self.workload.next_transaction(client);
                            self.submit_times.insert(next.id, now);
                            let actions = self.system.clients[idx].submit(next);
                            self.process_actions(ComponentId::Client(client), now, actions);
                        }
                    }
                }
                Action::BatchCommitted { seq, .. } => {
                    self.tracer.emit(seq.0, Stage::CommitQuorum, now);
                    // The NoShim baseline never sends an ordering message,
                    // so its once-per-batch aggregate client-authentication
                    // check lands at commit time instead.
                    if matches!(
                        self.system.protocol,
                        sbft_core::system::ShimProtocol::NoShim
                    ) {
                        if let Some(station) = self.stations.get_mut(&origin) {
                            station.schedule(now, self.cpu.aggregate_batch_check_cost());
                        }
                    }
                }
            }
        }
        for seq in &apply_seqs {
            self.tracer.emit(seq.0, Stage::ApplyEnd, now);
        }
    }

    /// Emits the batch-release markers: the batch's earliest member
    /// admission (shim ingest), earliest lane enqueue, and the release
    /// itself. The members' admission times are consumed here.
    fn mark_batch_release(&mut self, seq: SeqNum, txn_ids: &[TxnId], now: SimTime) {
        let mut first_arrival: Option<SimTime> = None;
        let mut first_enqueue: Option<SimTime> = None;
        for id in txn_ids {
            if let Some((arrival, enqueued)) = self.ingest_times.remove(id) {
                first_arrival = Some(first_arrival.map_or(arrival, |a| a.min(arrival)));
                first_enqueue = Some(first_enqueue.map_or(enqueued, |e| e.min(enqueued)));
            }
        }
        if let Some(at) = first_arrival {
            self.tracer.emit(seq.0, Stage::ShimIngest, at);
        }
        if let Some(at) = first_enqueue {
            self.tracer.emit(seq.0, Stage::LaneEnqueue, at);
        }
        self.tracer.emit(seq.0, Stage::BatchRelease, now);
    }
}

/// The sequence number and transaction ids of a batch-releasing ordering
/// message (the batch-release edge of PBFT, CFT and digest-mode PBFT), if
/// this is one. A digest proposal releases the batch without carrying the
/// bodies — the ids ride the message instead.
fn ordering_release(msg: &sbft_consensus::ConsensusMessage) -> Option<(SeqNum, Vec<TxnId>)> {
    match msg {
        sbft_consensus::ConsensusMessage::PrePrepare(p) => Some((p.seq, p.batch.txn_ids())),
        sbft_consensus::ConsensusMessage::CftAccept(a) => Some((a.seq, a.batch.txn_ids())),
        sbft_consensus::ConsensusMessage::DigestPrePrepare(d) => Some((d.seq, d.txn_ids.clone())),
        _ => None,
    }
}

/// The sequence number of a batch-releasing ordering message, if any.
fn ordering_batch_seq(msg: &sbft_consensus::ConsensusMessage) -> Option<SeqNum> {
    match msg {
        sbft_consensus::ConsensusMessage::PrePrepare(p) => Some(p.seq),
        sbft_consensus::ConsensusMessage::CftAccept(a) => Some(a.seq),
        sbft_consensus::ConsensusMessage::DigestPrePrepare(d) => Some(d.seq),
        _ => None,
    }
}

/// The batches a verifier action list validated, identified by their
/// outcome-bearing sends (response, abort or batch-validated broadcast),
/// deduplicated in first-seen order.
fn validated_batch_seqs(actions: &[Action]) -> Vec<SeqNum> {
    let mut seqs = Vec::new();
    for action in actions {
        let seq = match action {
            Action::Send(Envelope { msg, .. }) => match msg {
                ProtocolMessage::Response(r) => Some(r.seq),
                ProtocolMessage::Abort(a) => Some(a.seq),
                ProtocolMessage::BatchValidated(b) => Some(b.seq),
                _ => None,
            },
            _ => None,
        };
        if let Some(seq) = seq {
            if !seqs.contains(&seq) {
                seqs.push(seq);
            }
        }
    }
    seqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_core::system::ShimProtocol;
    use sbft_core::{ShimAttack, SystemBuilder};
    use sbft_types::{ConflictHandling, SystemConfig};
    use sbft_types::{NodeId, ShardId};

    fn tiny_config() -> SystemConfig {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.workload.num_records = 2_000;
        cfg.workload.batch_size = 10;
        cfg.workload.num_clients = 40;
        cfg.regions = sbft_types::RegionSet::first_n(3);
        cfg
    }

    fn tiny_params() -> SimParams {
        SimParams {
            duration: SimDuration::from_millis(300),
            warmup: SimDuration::from_millis(100),
            num_clients: 40,
            seed: 7,
            ..SimParams::default()
        }
    }

    #[test]
    fn closed_loop_run_commits_transactions_end_to_end() {
        let system = SystemBuilder::new(tiny_config()).clients(40).build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(
            metrics.committed_txns > 50,
            "committed {}",
            metrics.committed_txns
        );
        assert_eq!(metrics.aborted_txns, 0);
        assert_eq!(
            metrics.divergent_aborts, 0,
            "honest executors never diverge"
        );
        assert!(metrics.throughput_tps() > 100.0);
        assert!(metrics.avg_latency_secs() > 0.001);
        assert!(metrics.latency.p99_secs() >= metrics.latency.p50_secs());
        assert!(metrics.executors_spawned > 0);
        assert!(metrics.messages_delivered > 100);
    }

    #[test]
    fn digest_mode_commits_with_less_leader_egress_than_full_mode() {
        // Bigger batches than `tiny_config` so transaction bodies dominate
        // the PREPREPARE framing — the regime the digest mode targets.
        let run = |digest: bool| {
            let mut cfg = tiny_config();
            cfg.digest_proposals = digest;
            cfg.workload.batch_size = 40;
            cfg.workload.num_clients = 80;
            let system = SystemBuilder::new(cfg).clients(80).build();
            SimHarness::new(
                system,
                SimParams {
                    num_clients: 80,
                    ..tiny_params()
                },
            )
            .run()
        };
        let full = run(false);
        let digest = run(true);
        assert!(
            digest.committed_txns > 50,
            "digest mode makes progress, committed {}",
            digest.committed_txns
        );
        assert_eq!(digest.aborted_txns, 0);
        // The client broadcast keeps replica caches warm, so proposals
        // reconstruct locally instead of shipping bodies.
        assert!(
            digest.body_cache_hits > 0,
            "replicas reconstruct from their body caches"
        );
        assert_eq!(full.body_cache_hits, 0, "full mode never touches a cache");
        // The whole point: the primary ships digests, not bodies.
        assert!(full.leader_egress_bytes > 0);
        assert!(
            digest.leader_egress_bytes * 2 < full.leader_egress_bytes,
            "digest egress {} must be well below full egress {}",
            digest.leader_egress_bytes,
            full.leader_egress_bytes
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let run = || {
            let system = SystemBuilder::new(tiny_config()).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.committed_txns, b.committed_txns);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.executors_spawned, b.executors_spawned);
    }

    #[test]
    fn more_clients_do_not_reduce_throughput() {
        let few = {
            let system = SystemBuilder::new(tiny_config()).clients(10).build();
            SimHarness::new(
                system,
                SimParams {
                    num_clients: 10,
                    ..tiny_params()
                },
            )
            .run()
        };
        let many = {
            let system = SystemBuilder::new(tiny_config()).clients(80).build();
            SimHarness::new(
                system,
                SimParams {
                    num_clients: 80,
                    ..tiny_params()
                },
            )
            .run()
        };
        assert!(many.throughput_tps() >= few.throughput_tps() * 0.9);
        assert!(many.avg_latency_secs() >= few.avg_latency_secs() * 0.9);
    }

    #[test]
    fn cft_and_noshim_baselines_run_and_outperform_bft() {
        let bft = {
            let system = SystemBuilder::new(tiny_config()).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        let cft = {
            let system = SystemBuilder::new(tiny_config())
                .protocol(ShimProtocol::Cft)
                .clients(40)
                .build();
            SimHarness::new(system, tiny_params()).run()
        };
        let noshim = {
            let system = SystemBuilder::new(tiny_config())
                .protocol(ShimProtocol::NoShim)
                .clients(40)
                .build();
            SimHarness::new(system, tiny_params()).run()
        };
        assert!(cft.committed_txns > 0);
        assert!(noshim.committed_txns > 0);
        assert!(
            noshim.throughput_tps() >= bft.throughput_tps(),
            "NoShim {} vs BFT {}",
            noshim.throughput_tps(),
            bft.throughput_tps()
        );
        assert!(
            cft.throughput_tps() >= bft.throughput_tps() * 0.9,
            "CFT {} vs BFT {}",
            cft.throughput_tps(),
            bft.throughput_tps()
        );
    }

    #[test]
    fn byzantine_executors_do_not_block_progress() {
        use sbft_serverless::cloud::CloudFaultPlan;
        let system = SystemBuilder::new(tiny_config())
            .clients(40)
            .cloud_faults(CloudFaultPlan {
                byzantine_per_batch: 1,
                behavior: ExecutorBehavior::WrongResult,
            })
            .build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(
            metrics.committed_txns > 50,
            "committed {}",
            metrics.committed_txns
        );
    }

    #[test]
    fn crashing_executors_within_fe_do_not_block_progress() {
        use sbft_serverless::cloud::CloudFaultPlan;
        let system = SystemBuilder::new(tiny_config())
            .clients(40)
            .cloud_faults(CloudFaultPlan {
                byzantine_per_batch: 1,
                behavior: ExecutorBehavior::Crash,
            })
            .build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(metrics.committed_txns > 0);
    }

    #[test]
    fn suppressing_primary_is_replaced_and_progress_resumes() {
        let mut cfg = tiny_config();
        // Shorter timers so the recovery fits in the simulated window.
        cfg.timers.client_timeout = SimDuration::from_millis(40);
        cfg.timers.node_timeout = SimDuration::from_millis(30);
        cfg.timers.retransmit_timeout = SimDuration::from_millis(30);
        let system = SystemBuilder::new(cfg)
            .clients(40)
            .attack(NodeId(0), ShimAttack::SuppressRequests)
            .build();
        let params = SimParams {
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(50),
            num_clients: 40,
            seed: 3,
            ..SimParams::default()
        };
        let metrics = SimHarness::new(system, params).run();
        assert!(
            metrics.committed_txns > 0,
            "the shim must recover from a suppressing primary"
        );
    }

    #[test]
    fn conflicting_workload_aborts_some_transactions() {
        let mut cfg = tiny_config();
        cfg.conflict_handling = ConflictHandling::UnknownRwSets;
        cfg.workload.conflict_fraction = 0.5;
        let system = SystemBuilder::new(cfg).clients(40).build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(metrics.committed_txns > 0);
        assert!(
            metrics.aborted_txns > 0,
            "50% conflicts with unknown rw-sets must cause aborts"
        );
    }

    #[test]
    fn shard_count_scales_a_ccheck_bound_verifier() {
        // Make the per-transaction ccheck expensive enough that the shard
        // stations are the bottleneck, then check that adding shards
        // raises committed throughput (Figure 6(ix)-style core scaling,
        // applied to the sharded commit path).
        let run = |shards: usize| {
            let mut cfg = tiny_config();
            cfg.workload.num_clients = 240;
            cfg.sharding = sbft_types::ShardingConfig::with_shards(shards);
            let system = SystemBuilder::new(cfg).clients(240).build();
            let cpu = CpuModel {
                storage_access_cost: SimDuration::from_micros(400),
                ..CpuModel::default()
            };
            SimHarness::with_models(
                system,
                SimParams {
                    num_clients: 240,
                    ..tiny_params()
                },
                crate::network::NetworkModel::default(),
                cpu,
            )
            .run()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four.committed_txns as f64 >= one.committed_txns as f64 * 1.5,
            "4 shards ({}) must clearly beat 1 shard ({})",
            four.committed_txns,
            one.committed_txns
        );
    }

    #[test]
    fn chained_cchecks_climb_the_lock_ordered_staircase() {
        // Cross-shard (`chained`) ccheck slices model the lock-ordered
        // two-phase acquisition: shard i+1 starts only after shard i
        // grants, so completions form a strict staircase. Single-home
        // (unchained) slices keep running in parallel from arrival.
        let mk_harness = || {
            let system = SystemBuilder::new({
                let mut c = tiny_config();
                c.sharding = sbft_types::ShardingConfig::with_shards(4);
                c
            })
            .clients(4)
            .build();
            SimHarness::new(system, tiny_params())
        };
        let slice = |shard: u32, chained: bool| Action::ShardCcheck {
            shard: ShardId(shard),
            txns: 1,
            accesses: 10,
            planned: false,
            chained,
        };
        let probe = |h: &mut SimHarness| -> Vec<SimTime> {
            h.shard_stations
                .iter_mut()
                .map(|s| s.schedule(SimTime::ZERO, SimDuration::ZERO))
                .collect()
        };
        let cost = CpuModel::default().ccheck_cost_probed(1, 10);

        let mut chained = mk_harness();
        chained.process_actions(
            ComponentId::Verifier,
            SimTime::ZERO,
            vec![slice(0, true), slice(1, true), slice(2, true)],
        );
        let steps = probe(&mut chained);
        assert_eq!(steps[0], SimTime::ZERO + cost, "first lock from arrival");
        assert_eq!(
            steps[1],
            SimTime::ZERO + cost + cost,
            "shard 1 starts after shard 0 grants"
        );
        assert_eq!(steps[2], SimTime::ZERO + cost + cost + cost);

        let mut parallel = mk_harness();
        parallel.process_actions(
            ComponentId::Verifier,
            SimTime::ZERO,
            vec![slice(0, false), slice(1, false), slice(2, false)],
        );
        let flat = probe(&mut parallel);
        for done in &flat[..3] {
            assert_eq!(*done, SimTime::ZERO + cost, "unchained slices overlap");
        }
    }

    #[test]
    fn cross_shard_batches_pay_the_staircase_in_commit_latency() {
        // Metrics-level staircase: the same key-disjoint workload, once
        // as single-home transactions and once as 2-key cross-home
        // transactions over geo-unaware shards. With an expensive ccheck
        // the cross-home run's mean commit latency must carry the
        // serialised (chained) shard acquisitions instead of the
        // parallel charge.
        let run = |ops_per_txn: usize| {
            let mut cfg = tiny_config();
            cfg.workload.num_clients = 60;
            cfg.workload.ops_per_txn = ops_per_txn;
            cfg.sharding = sbft_types::ShardingConfig::with_shards(4);
            let system = SystemBuilder::new(cfg).clients(60).build();
            let cpu = CpuModel {
                storage_access_cost: SimDuration::from_micros(600),
                ..CpuModel::default()
            };
            SimHarness::with_models(
                system,
                SimParams {
                    num_clients: 60,
                    ..tiny_params()
                },
                crate::network::NetworkModel::default(),
                cpu,
            )
            .run()
        };
        let single = run(1);
        let cross = run(2);
        assert!(single.committed_txns > 0 && cross.committed_txns > 0);
        assert!(
            cross.avg_latency_secs() > single.avg_latency_secs() * 1.5,
            "lock-ordered chaining must show up in latency: cross {} vs single {}",
            cross.avg_latency_secs(),
            single.avg_latency_secs()
        );
    }

    #[test]
    fn geo_partitioning_charges_remote_fetches_and_pinning_removes_them() {
        // Plan-aware placement end to end in the simulator: same
        // single-home workload over geo-partitioned storage, once with
        // the invoker pinning SingleHome batches to their home region
        // and once with the round-robin baseline. Pinning must (a)
        // actually pin, (b) drive the remote-fetch rate down, and (c)
        // not raise the mean commit latency.
        let run = |pinned: bool| {
            let mut cfg = tiny_config();
            cfg.conflict_handling = ConflictHandling::KnownRwSets;
            cfg.regions = sbft_types::RegionSet::first_n(3);
            cfg.sharding = sbft_types::ShardingConfig::with_shards(6)
                .with_geo_partitioning()
                .with_pinned_placement(pinned);
            let system = SystemBuilder::new(cfg).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        let pinned = run(true);
        let rr = run(false);
        assert!(pinned.committed_txns > 0 && rr.committed_txns > 0);
        assert!(pinned.pinned_spawns > 0, "SingleHome batches must pin");
        assert_eq!(rr.pinned_spawns, 0, "the baseline never pins");
        assert!(
            pinned.remote_fetch_rate() < rr.remote_fetch_rate(),
            "pinning must cut cross-region fetches: {} vs {}",
            pinned.remote_fetch_rate(),
            rr.remote_fetch_rate()
        );
        assert!(
            pinned.avg_latency_secs() <= rr.avg_latency_secs(),
            "pinned placement must not be slower: {} vs {}",
            pinned.avg_latency_secs(),
            rr.avg_latency_secs()
        );
    }

    #[test]
    fn crash_restarted_backup_replays_its_wal_and_liveness_degrades_gracefully() {
        let mut cfg = tiny_config();
        // A wide snapshot interval keeps replayable entries in the log at
        // the crash point (truncation itself is pinned by
        // `snapshots_truncate_the_wal_during_a_run`).
        cfg.durability = sbft_types::DurabilityConfig::enabled().with_snapshot_interval(1_000);
        let baseline = {
            let system = SystemBuilder::new(cfg.clone()).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        let crashed = {
            let system = SystemBuilder::new(cfg.clone()).clients(40).build();
            let params = SimParams {
                crash: Some(CrashRestart::of(
                    NodeId(2),
                    SimDuration::from_millis(150),
                    SimDuration::from_millis(60),
                )),
                ..tiny_params()
            };
            SimHarness::new(system, params).run()
        };
        assert!(baseline.wal_appends > 0, "durability logs protocol steps");
        assert_eq!(baseline.recoveries, 0);
        assert_eq!(crashed.recoveries, 1);
        assert!(
            crashed.replay_batches > 0,
            "the restarted backup replays committed batches from its WAL"
        );
        assert!(
            crashed.state_transfer_batches > 0,
            "the suffix committed while the node was dark is state-transferred"
        );
        // One crashed backup must not stop the shim (quorum of 3 remains),
        // and throughput degrades gracefully rather than collapsing.
        assert!(
            crashed.committed_txns as f64 > baseline.committed_txns as f64 * 0.5,
            "crashed {} vs baseline {}",
            crashed.committed_txns,
            baseline.committed_txns
        );
    }

    #[test]
    fn snapshots_truncate_the_wal_during_a_run() {
        let mut cfg = tiny_config();
        cfg.durability = sbft_types::DurabilityConfig::enabled().with_snapshot_interval(4);
        let system = SystemBuilder::new(cfg).clients(40).build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(metrics.committed_txns > 0);
        assert!(
            metrics.snapshot_bytes > 0,
            "the snapshot rhythm reclaims log bytes"
        );
    }

    #[test]
    fn crash_restarting_the_primary_is_survivable() {
        let mut cfg = tiny_config();
        cfg.durability = sbft_types::DurabilityConfig::enabled();
        cfg.timers.client_timeout = SimDuration::from_millis(40);
        cfg.timers.node_timeout = SimDuration::from_millis(30);
        cfg.timers.retransmit_timeout = SimDuration::from_millis(30);
        let system = SystemBuilder::new(cfg).clients(40).build();
        let params = SimParams {
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(50),
            num_clients: 40,
            seed: 3,
            crash: Some(CrashRestart::of(
                NodeId(0),
                SimDuration::from_millis(120),
                SimDuration::from_millis(80),
            )),
            ..SimParams::default()
        };
        let metrics = SimHarness::new(system, params).run();
        assert_eq!(metrics.recoveries, 1);
        assert!(
            metrics.committed_txns > 0,
            "the shim must replace the crashed primary and keep committing"
        );
    }

    #[test]
    fn durability_costs_bound_the_fsync_tax() {
        // The fsync-aware cost axis: a durable run pays for its synced
        // WAL writes, so it can never commit more than the identical run
        // without durability.
        let plain = {
            let system = SystemBuilder::new(tiny_config()).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        let durable = {
            let mut cfg = tiny_config();
            cfg.durability = sbft_types::DurabilityConfig::enabled();
            let system = SystemBuilder::new(cfg).clients(40).build();
            SimHarness::new(system, tiny_params()).run()
        };
        assert!(durable.committed_txns > 0);
        assert!(
            durable.committed_txns <= plain.committed_txns,
            "durable {} vs plain {}",
            durable.committed_txns,
            plain.committed_txns
        );
    }

    #[test]
    fn concurrency_limit_rejections_are_counted() {
        let system = SystemBuilder::new(tiny_config())
            .clients(40)
            .cloud_concurrency_limit(2)
            .build();
        let metrics = SimHarness::new(system, tiny_params()).run();
        assert!(metrics.spawns_rejected > 0);
    }
}
