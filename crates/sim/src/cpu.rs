//! The CPU cost model.
//!
//! Each component (shim node, verifier, client) is modelled as a service
//! station with as many parallel servers as it has cores — the same
//! abstraction as ResilientDB's multi-threaded, pipelined node architecture
//! that the paper deploys on every shim node. Each received message has a
//! service time built from the cryptographic work it triggers (digital
//! signatures are markedly more expensive than MACs, which is why PBFT's
//! signed `COMMIT` phase and certificate validation dominate) plus a
//! per-byte serialisation/hashing term and a fixed dispatch overhead.
//!
//! The station model is what produces the saturation behaviour of Figure 5,
//! the batching sweet spot of Figure 6(iii), and the core-count scaling of
//! Figure 6(ix)–(x).

use sbft_types::{SimDuration, SimTime};

/// Per-message CPU cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Cost of creating or verifying one digital signature.
    pub signature_cost: SimDuration,
    /// Cost of creating or verifying one MAC.
    pub mac_cost: SimDuration,
    /// Per-request share of the primary's client-authentication work
    /// under aggregate verification: bookkeeping one request's slot in the
    /// batch's aggregate signature check (hash-and-accumulate), not a full
    /// verification. One full [`Self::signature_cost`] aggregate check is
    /// charged per released batch on top of these shares.
    pub request_share_cost: SimDuration,
    /// Cost per byte of serialisation / hashing work.
    pub per_byte_ns: f64,
    /// Fixed dispatch overhead per message.
    pub base_cost: SimDuration,
    /// Storage access cost per read or write performed by the verifier or
    /// an executor.
    pub storage_access_cost: SimDuration,
    /// Cost at the spawning shim node of issuing one executor spawn (signed
    /// HTTPS request to the cloud provider via the invoker).
    pub spawn_cost: SimDuration,
    /// Per-key cost of the ordering-time shard routing (one Fibonacci
    /// hash plus the lane bookkeeping per declared key). Charged at the
    /// primary per client request when the shard planner is active.
    pub routing_ns_per_key: f64,
    /// Per-transaction overhead of the *probed* apply path: building the
    /// `BTreeSet` route set of each transaction. The verified
    /// ordering-time fast path skips it entirely.
    pub probe_ns_per_txn: f64,
    /// Per-access overhead of the probed path's key map (the cross-home
    /// fallback probe hashing every read/write key once more). Also
    /// skipped by the verified fast path.
    pub probe_ns_per_access: f64,
    /// Cost of one fsync on the write-ahead log (the durable-vote rule
    /// charges it before a synced record's message leaves the node). An
    /// edge device's flash commit latency, not a datacenter NVMe.
    pub fsync_cost: SimDuration,
    /// Per-byte cost of writing (or replaying) WAL records, on top of
    /// [`Self::fsync_cost`] for synced writes.
    pub wal_byte_ns: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            signature_cost: SimDuration::from_micros(22),
            mac_cost: SimDuration::from_micros(2),
            request_share_cost: SimDuration::from_micros(2),
            per_byte_ns: 0.6,
            base_cost: SimDuration::from_micros(3),
            storage_access_cost: SimDuration::from_micros(1),
            spawn_cost: SimDuration::from_micros(45),
            routing_ns_per_key: 15.0,
            probe_ns_per_txn: 150.0,
            probe_ns_per_access: 40.0,
            fsync_cost: SimDuration::from_micros(80),
            wal_byte_ns: 0.3,
        }
    }
}

impl CpuModel {
    fn bytes_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(((bytes as f64 * self.per_byte_ns) / 1000.0).round() as u64)
    }

    /// Service time for processing one received message of the given kind
    /// and size at a shim node, the verifier or a client.
    #[must_use]
    pub fn message_cost(&self, kind: &str, bytes: usize) -> SimDuration {
        let crypto = match kind {
            // A full per-request verification — the non-primary path (a
            // replica eagerly verifies before forwarding). The primary's
            // amortised aggregate path goes through
            // [`Self::client_request_cost`] /
            // [`Self::aggregate_batch_check_cost`] instead.
            "CLIENT-REQUEST" => self.signature_cost,
            // MAC check on receipt plus the MAC of the prepare we emit.
            "PREPREPARE" => self.mac_cost + self.mac_cost,
            "PREPARE" => self.mac_cost,
            // Verify the sender's commit signature; creating our own commit
            // signature is charged when we received the quorum-completing
            // prepare, folded in here for simplicity.
            "COMMIT" => self.signature_cost,
            "VIEWCHANGE" | "NEWVIEW" | "CHECKPOINT" => self.signature_cost,
            // Certificate validation at the executor: a quorum of commit
            // signatures plus the spawner's signature.
            "EXECUTE" => self.signature_cost.saturating_mul(4),
            // The verifier checks the executor signature and the embedded
            // certificate before counting the message.
            "VERIFY" => self.signature_cost.saturating_mul(4),
            // Clients verify the trusted verifier's signature.
            "RESPONSE" | "ABORT" => self.signature_cost,
            "ERROR" | "REPLACE" | "ACK" | "BATCH-VALIDATED" => self.signature_cost,
            _ => SimDuration::ZERO,
        };
        self.base_cost + crypto + self.bytes_cost(bytes)
    }

    /// Service time of admitting one client request at a shim node. At
    /// the primary the per-request crypto is the aggregate-verification
    /// *share* ([`Self::request_share_cost`]) — the full
    /// [`Self::signature_cost`] aggregate check is charged once per batch
    /// via [`Self::aggregate_batch_check_cost`] when the batch is
    /// released, which is how the implementation amortises client
    /// authentication (one aggregate signature per batch). Non-primary
    /// replicas still verify each request eagerly before forwarding and
    /// keep the full per-request cost.
    #[must_use]
    pub fn client_request_cost(&self, bytes: usize, at_primary: bool) -> SimDuration {
        let crypto = if at_primary {
            self.request_share_cost
        } else {
            self.signature_cost
        };
        self.base_cost + crypto + self.bytes_cost(bytes)
    }

    /// The once-per-batch aggregate signature check charged at the
    /// primary when a batch is released into ordering (and at commit time
    /// for the NoShim baseline, which validates client authentication as
    /// part of the protocol check).
    #[must_use]
    pub fn aggregate_batch_check_cost(&self) -> SimDuration {
        self.signature_cost
    }

    /// Extra service time for the verifier when validating a batch of
    /// `txns` transactions (per-transaction concurrency check and write).
    #[must_use]
    pub fn validation_cost(&self, txns: usize) -> SimDuration {
        self.storage_access_cost.saturating_mul(2 * txns as u64) + self.base_cost
    }

    /// Service time of classifying one client request against the shard
    /// map at ordering time (`keys` declared read/write keys). Sub-micro
    /// per request; it accumulates with batch size like the hashing term.
    #[must_use]
    pub fn routing_cost(&self, keys: usize) -> SimDuration {
        SimDuration::from_micros(((keys as f64 * self.routing_ns_per_key) / 1000.0).round() as u64)
    }

    /// Service time of the concurrency-control check (`ccheck`) for a
    /// batch slice of `accesses` read/write-set entries on one execution
    /// shard: one storage access per validated read and applied write,
    /// plus the fixed dispatch overhead. This is the *pre-planned*
    /// (verified single-home fast path) cost — no per-transaction route
    /// sets, no probe key map.
    #[must_use]
    pub fn ccheck_cost(&self, accesses: usize) -> SimDuration {
        self.storage_access_cost.saturating_mul(accesses as u64) + self.base_cost
    }

    /// Service time of one write-ahead-log operation of `bytes` encoded
    /// bytes: the per-byte write (or replay) work, plus one
    /// [`Self::fsync_cost`] when the operation ends with an fsync. This
    /// is the durability axis of the cost model: synced votes and
    /// commits slow the pipeline down by a bounded, modelled amount
    /// instead of being free.
    #[must_use]
    pub fn persist_cost(&self, bytes: u64, fsync: bool) -> SimDuration {
        let write =
            SimDuration::from_micros(((bytes as f64 * self.wal_byte_ns) / 1000.0).ceil() as u64);
        if fsync {
            write + self.fsync_cost
        } else {
            write
        }
    }

    /// Service time of the *probed* ccheck for `txns` transactions with
    /// `accesses` total read/write-set entries: the planned cost plus the
    /// per-transaction `BTreeSet` routing and the probe's per-access key
    /// map the fast path skips. Always strictly dearer than
    /// [`Self::ccheck_cost`] for non-empty work (the fast-path gap the
    /// ROADMAP asked the model to reflect).
    #[must_use]
    pub fn ccheck_cost_probed(&self, txns: usize, accesses: usize) -> SimDuration {
        let probe_ns =
            txns as f64 * self.probe_ns_per_txn + accesses as f64 * self.probe_ns_per_access;
        self.ccheck_cost(accesses) + SimDuration::from_micros((probe_ns / 1000.0).ceil() as u64)
    }
}

/// A multi-core service station: picks the earliest available core and
/// returns when the work completes.
#[derive(Clone, Debug)]
pub struct ServiceStation {
    cores: Vec<SimTime>,
    busy: SimDuration,
}

impl ServiceStation {
    /// Creates a station with `cores` parallel servers.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        ServiceStation {
            cores: vec![SimTime::ZERO; cores.max(1)],
            busy: SimDuration::ZERO,
        }
    }

    /// Schedules `work` arriving at `now`; returns the completion time.
    pub fn schedule(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let core = self
            .cores
            .iter_mut()
            .min_by_key(|t| t.as_micros())
            .expect("at least one core");
        let start = (*core).max(now);
        let end = start + work;
        *core = end;
        self.busy += work;
        end
    }

    /// Total busy time accumulated across all cores.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_messages_cost_more_than_mac_messages() {
        let cpu = CpuModel::default();
        assert!(cpu.message_cost("COMMIT", 220) > cpu.message_cost("PREPARE", 216));
        assert!(cpu.message_cost("VERIFY", 2_000) > cpu.message_cost("PREPARE", 216));
    }

    #[test]
    fn bigger_messages_cost_more() {
        let cpu = CpuModel::default();
        assert!(cpu.message_cost("PREPREPARE", 50_000) > cpu.message_cost("PREPREPARE", 5_000));
    }

    #[test]
    fn aggregate_verification_amortises_client_auth_at_the_primary() {
        let cpu = CpuModel::default();
        let bytes = 180;
        // The primary's per-request admission is much cheaper than the
        // eager per-request verification non-primaries still do.
        assert!(cpu.client_request_cost(bytes, true) < cpu.client_request_cost(bytes, false));
        assert_eq!(
            cpu.client_request_cost(bytes, false),
            cpu.message_cost("CLIENT-REQUEST", bytes)
        );
        // Across a batch of B requests the amortised primary path (B
        // shares + one aggregate check) undercuts B full verifications.
        let batch = 50u64;
        let amortised = cpu.client_request_cost(bytes, true).saturating_mul(batch)
            + cpu.aggregate_batch_check_cost();
        let eager = cpu
            .message_cost("CLIENT-REQUEST", bytes)
            .saturating_mul(batch);
        assert!(amortised < eager);
    }

    #[test]
    fn validation_cost_scales_with_batch_size() {
        let cpu = CpuModel::default();
        assert!(cpu.validation_cost(1_000) > cpu.validation_cost(10));
    }

    #[test]
    fn routing_cost_is_small_but_scales_with_keys() {
        let cpu = CpuModel::default();
        assert_eq!(
            cpu.routing_cost(1),
            SimDuration::ZERO,
            "sub-micro rounds down"
        );
        assert!(cpu.routing_cost(1_000) >= SimDuration::from_micros(10));
        assert!(cpu.routing_cost(1_000) < cpu.validation_cost(1_000));
    }

    #[test]
    fn probed_ccheck_costs_strictly_more_than_preplanned() {
        // Pins the fast-path gap: the planned cost is the pure
        // storage-access term, the probed cost adds exactly the
        // route-set and key-map overhead the verified fast path skips.
        let cpu = CpuModel::default();
        let accesses = 200; // a 100-txn batch of 1-read-1-write txns
        let txns = 100;
        let planned = cpu.ccheck_cost(accesses);
        let probed = cpu.ccheck_cost_probed(txns, accesses);
        assert_eq!(planned, SimDuration::from_micros(200 + 3));
        // 100 × 150 ns + 200 × 40 ns = 23 µs of skipped probe work.
        assert_eq!(probed, planned + SimDuration::from_micros(23));
        assert!(probed > planned);
        // Empty work costs the same either way (nothing to probe).
        assert_eq!(cpu.ccheck_cost_probed(0, 0), cpu.ccheck_cost(0));
    }

    #[test]
    fn synced_wal_writes_cost_an_fsync() {
        let cpu = CpuModel::default();
        // The fsync dominates small synced writes…
        assert!(cpu.persist_cost(256, true) >= cpu.fsync_cost);
        assert!(cpu.persist_cost(256, false) < cpu.persist_cost(256, true));
        // …and buffered writes scale with the encoded size only.
        assert!(cpu.persist_cost(1_000_000, false) > cpu.persist_cost(100, false));
    }

    #[test]
    fn station_serialises_work_on_one_core() {
        let mut station = ServiceStation::new(1);
        let t1 = station.schedule(SimTime::ZERO, SimDuration::from_micros(100));
        let t2 = station.schedule(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(t1, SimTime::from_micros(100));
        assert_eq!(t2, SimTime::from_micros(200));
        assert_eq!(station.busy_time(), SimDuration::from_micros(200));
    }

    #[test]
    fn station_parallelises_across_cores() {
        let mut station = ServiceStation::new(4);
        let ends: Vec<SimTime> = (0..4)
            .map(|_| station.schedule(SimTime::ZERO, SimDuration::from_micros(100)))
            .collect();
        assert!(ends.iter().all(|t| *t == SimTime::from_micros(100)));
        let fifth = station.schedule(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(fifth, SimTime::from_micros(200));
    }

    #[test]
    fn idle_station_starts_work_at_arrival_time() {
        let mut station = ServiceStation::new(2);
        let end = station.schedule(SimTime::from_millis(10), SimDuration::from_micros(50));
        assert_eq!(end, SimTime::from_micros(10_050));
    }

    #[test]
    fn zero_core_request_clamps_to_one() {
        assert_eq!(ServiceStation::new(0).cores(), 1);
    }
}
