//! Run metrics: throughput, latency, aborts, traffic and cost.

use sbft_serverless::{CostModel, CostReport};
use sbft_telemetry::Histogram;
use sbft_types::{SimDuration, SimTime};

/// Latency statistics over the measured (post-warm-up) window.
///
/// A façade over the telemetry [`Histogram`]: recording is
/// allocation-free and percentile queries walk the fixed bucket table
/// (quantisation error ≤ 1/64) instead of cloning and sorting the sample
/// vector on every call. `Clone` shares the underlying histogram.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    histogram: Histogram,
}

impl LatencyStats {
    /// Records one client-observed latency.
    pub fn record(&mut self, latency: SimDuration) {
        self.histogram.record(latency.as_micros());
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.histogram.count() as usize
    }

    /// Average latency in seconds (0 when empty). Exact — the histogram
    /// keeps the true sum, not bucket representatives.
    #[must_use]
    pub fn avg_secs(&self) -> f64 {
        self.histogram.mean_us() / 1_000_000.0
    }

    /// The given percentile (0.0–1.0) in seconds, quantised to the
    /// histogram bucket's upper bound (≤ 1/64 above the true order
    /// statistic, never below).
    #[must_use]
    pub fn percentile_secs(&self, p: f64) -> f64 {
        self.histogram.percentile_us(p) as f64 / 1_000_000.0
    }

    /// The underlying shared histogram (for registry registration).
    #[must_use]
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// Median latency in seconds.
    #[must_use]
    pub fn p50_secs(&self) -> f64 {
        self.percentile_secs(0.5)
    }

    /// 99th-percentile latency in seconds.
    #[must_use]
    pub fn p99_secs(&self) -> f64 {
        self.percentile_secs(0.99)
    }
}

/// Everything measured during one simulated run.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Transactions committed inside the measurement window.
    pub committed_txns: u64,
    /// Transactions aborted inside the measurement window.
    pub aborted_txns: u64,
    /// Whole batches the verifier aborted because the executors' result
    /// digests diverged with no `f_E + 1` match — both the count-triggered
    /// form (every spawned executor answered) and the timer-triggered form
    /// (at least `2f_E + 1` answered before the abort timeout) of the
    /// Section VI-B divergence rule. Counted over the whole run, not just
    /// the measured window.
    pub divergent_aborts: u64,
    /// Batches the verifier validated over the whole run (commit or
    /// whole-batch abort).
    pub validated_batches: u64,
    /// Validated batches whose entire footprint lived on one shard — the
    /// complement is the cross-shard coordination rate the ordering-time
    /// planner drives down. Counted over the whole run.
    pub single_home_batches: u64,
    /// Batches applied through the verified ordering-time fast path
    /// (`SingleHome` tag that survived re-derivation).
    pub planned_batches: u64,
    /// `SingleHome` tags that failed re-derivation (byzantine primary or
    /// mis-declared read-write sets) and fell back to unplanned routing.
    pub plan_mismatches: u64,
    /// Executors placed by pinning (plan-aware placement against a
    /// geo-partitioned store), summed over the shim nodes.
    pub pinned_spawns: u64,
    /// Batches whose pin was refused (home region faulted, unavailable
    /// or over capacity) and that fell back to the round-robin rotation.
    pub placement_fallbacks: u64,
    /// Executor storage fetches served by the executor's own region's
    /// partition (geo-partitioned runs only).
    pub local_storage_fetches: u64,
    /// Executor storage fetches that crossed regions and paid the
    /// inter-region round trip (geo-partitioned runs only).
    pub remote_storage_fetches: u64,
    /// Client-observed latencies.
    pub latency: LatencyStats,
    /// Length of the measurement window.
    pub measured_duration: SimDuration,
    /// Total messages delivered (all kinds).
    pub messages_delivered: u64,
    /// Total bytes moved over the network.
    pub bytes_delivered: u64,
    /// Bytes sent node-to-node by whichever node was acting as primary at
    /// send time (charged sender-side, before fault-plan loss). This is
    /// the ordering-bandwidth bottleneck digest proposals shrink.
    pub leader_egress_bytes: u64,
    /// Digest reconstructions served from the local body cache, summed
    /// over the shim nodes (transaction granularity).
    pub body_cache_hits: u64,
    /// Digest-proposal transaction bodies missing from the local cache.
    pub body_cache_misses: u64,
    /// `BATCHFETCH` requests sent to recover missing bodies.
    pub batch_fetches: u64,
    /// Executors spawned during the whole run.
    pub executors_spawned: u64,
    /// Spawn requests rejected by the cloud's concurrency limit.
    pub spawns_rejected: u64,
    /// Total executor busy time (for the Lambda bill).
    pub executor_busy: SimDuration,
    /// View changes observed.
    pub view_changes: u64,
    /// Records appended to the shim nodes' write-ahead logs, summed.
    pub wal_appends: u64,
    /// Bytes reclaimed by WAL snapshot truncation, summed over nodes.
    pub snapshot_bytes: u64,
    /// Committed batches re-seated from WAL replay after crash restarts.
    pub replay_batches: u64,
    /// Committed batches adopted from peer state transfer after crash
    /// restarts.
    pub state_transfer_batches: u64,
    /// Crash-restart recoveries completed during the run.
    pub recoveries: u64,
    /// Messages dropped by fault-plan link loss rules.
    pub messages_dropped: u64,
    /// Extra message copies injected by fault-plan duplication.
    pub messages_duplicated: u64,
    /// Message copies that drew fault-plan extra link delay.
    pub messages_delayed: u64,
    /// Messages cut by an active fault-plan partition window.
    pub partition_drops: u64,
    /// Fsyncs stretched by a fault-plan disk-lag straggler.
    pub fsync_lags: u64,
    /// Garbage `STATERESPONSE` entries rejected during recovery, summed
    /// over the shim nodes.
    pub bad_state_responses: u64,
    /// `STATEREQUEST` retransmissions sent by recovering replicas.
    pub state_request_retries: u64,
    /// Checkpoint catch-ups: recoveries that adopted a peer's snapshot
    /// floor because their own log floor fell below peer retention.
    pub catch_ups: u64,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
}

impl RunMetrics {
    /// Committed transactions per second of measured (virtual) time.
    #[must_use]
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.measured_duration.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed_txns as f64 / secs
    }

    /// Fraction of transactions that aborted.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed_txns + self.aborted_txns;
        if total == 0 {
            return 0.0;
        }
        self.aborted_txns as f64 / total as f64
    }

    /// Average client latency in seconds.
    #[must_use]
    pub fn avg_latency_secs(&self) -> f64 {
        self.latency.avg_secs()
    }

    /// Fraction of validated batches that needed cross-shard
    /// coordination (1 − single-home rate); 0 when nothing validated.
    #[must_use]
    pub fn cross_shard_fallback_rate(&self) -> f64 {
        if self.validated_batches == 0 {
            return 0.0;
        }
        1.0 - self.single_home_batches as f64 / self.validated_batches as f64
    }

    /// Fraction of executor storage fetches that crossed regions — the
    /// locality metric plan-aware placement drives down; 0 when storage
    /// is not geo-partitioned (no fetch is ever classified).
    #[must_use]
    pub fn remote_fetch_rate(&self) -> f64 {
        let total = self.local_storage_fetches + self.remote_storage_fetches;
        if total == 0 {
            return 0.0;
        }
        self.remote_storage_fetches as f64 / total as f64
    }

    /// Builds the Figure-8 style cost report for this run.
    #[must_use]
    pub fn cost_report(
        &self,
        model: &CostModel,
        machines: usize,
        cores: usize,
        memory_gib: f64,
    ) -> CostReport {
        let avg_exec = self
            .executor_busy
            .as_micros()
            .checked_div(self.executors_spawned)
            .map_or(SimDuration::ZERO, SimDuration::from_micros);
        CostReport {
            serverless_dollars: model.lambda_cost(self.executors_spawned, avg_exec),
            machine_dollars: model.machine_cost(
                machines,
                cores,
                memory_gib,
                self.end_time - SimTime::ZERO,
            ),
            committed_txns: self.committed_txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_compute_percentiles() {
        let mut stats = LatencyStats::default();
        for ms in 1..=100u64 {
            stats.record(SimDuration::from_millis(ms));
        }
        assert_eq!(stats.count(), 100);
        assert!((stats.avg_secs() - 0.0505).abs() < 1e-6);
        assert!((stats.p50_secs() - 0.05).abs() < 0.002);
        assert!(stats.p99_secs() >= 0.098);
        assert!(stats.percentile_secs(0.0) <= 0.002);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LatencyStats::default();
        assert_eq!(stats.avg_secs(), 0.0);
        assert_eq!(stats.p99_secs(), 0.0);
    }

    #[test]
    fn throughput_is_committed_over_window() {
        let metrics = RunMetrics {
            committed_txns: 5_000,
            measured_duration: SimDuration::from_millis(500),
            ..RunMetrics::default()
        };
        assert!((metrics.throughput_tps() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn cross_shard_fallback_rate_is_the_single_home_complement() {
        let metrics = RunMetrics::default();
        assert_eq!(metrics.cross_shard_fallback_rate(), 0.0);
        let metrics = RunMetrics {
            validated_batches: 10,
            single_home_batches: 7,
            ..RunMetrics::default()
        };
        assert!((metrics.cross_shard_fallback_rate() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn remote_fetch_rate_is_the_cross_region_share() {
        assert_eq!(RunMetrics::default().remote_fetch_rate(), 0.0);
        let metrics = RunMetrics {
            local_storage_fetches: 30,
            remote_storage_fetches: 10,
            ..RunMetrics::default()
        };
        assert!((metrics.remote_fetch_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_handles_zero_and_mixed() {
        let metrics = RunMetrics::default();
        assert_eq!(metrics.abort_rate(), 0.0);
        let metrics = RunMetrics {
            committed_txns: 75,
            aborted_txns: 25,
            ..RunMetrics::default()
        };
        assert!((metrics.abort_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cost_report_accounts_for_spawns_and_machines() {
        let metrics = RunMetrics {
            committed_txns: 10_000,
            executors_spawned: 300,
            executor_busy: SimDuration::from_secs(30),
            end_time: SimTime::from_secs(10),
            measured_duration: SimDuration::from_secs(10),
            ..RunMetrics::default()
        };
        let report = metrics.cost_report(&CostModel::default(), 8, 16, 16.0);
        assert!(report.serverless_dollars > 0.0);
        assert!(report.machine_dollars > 0.0);
        assert!(report.cents_per_ktxn().is_finite());
    }
}
