//! Composable fault plans: deterministic chaos for the simulator.
//!
//! A [`FaultPlan`] describes an adversarial environment declaratively —
//! per-link message loss / duplication / extra-delay distributions
//! ([`LinkRule`]), directed network partitions with a heal time
//! ([`PartitionWindow`]), per-node fsync-latency stragglers ([`DiskLag`])
//! and any number of (possibly simultaneous) [`CrashRestart`]s. The
//! harness consults the plan at its two physical boundaries — the
//! node-to-node `Send` fan-out and the durable `Persist` path — so the
//! role state machines stay pure and fault-oblivious.
//!
//! Every random draw comes from one [`rand::rngs::StdRng`] seeded from
//! the run seed, so two runs of the same seed and plan experience the
//! *byte-identical* fault schedule. Injected faults are surfaced as
//! `faults.*` registry counters (see OBSERVABILITY.md):
//!
//! | counter                     | meaning                                  |
//! |-----------------------------|------------------------------------------|
//! | `faults.messages_dropped`   | messages lost by a link loss rule        |
//! | `faults.messages_duplicated`| extra copies injected by duplication     |
//! | `faults.messages_delayed`   | copies that drew extra link delay        |
//! | `faults.partition_drops`    | messages cut by an active partition      |
//! | `faults.fsync_lags`         | fsyncs stretched by a disk-lag straggler |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbft_serverless::CrashRestart;
use sbft_telemetry::{Counter, Registry};
use sbft_types::{NodeId, SimDuration, SimTime};

/// Per-link fault distribution: probabilities of loss, duplication and
/// extra delay applied to every matching message.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkFaults {
    /// Probability in `[0, 1]` that a matching message is dropped.
    pub loss: f64,
    /// Probability that a delivered message is duplicated (one extra copy).
    pub duplicate: f64,
    /// Probability that a delivered copy draws extra delay — drawing
    /// different delays per copy is also what reorders messages relative
    /// to the FIFO base network.
    pub delay_prob: f64,
    /// Upper bound (exclusive) of the uniform extra-delay draw.
    pub max_extra_delay: SimDuration,
}

impl LinkFaults {
    /// A loss-only fault distribution.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        LinkFaults {
            loss,
            ..LinkFaults::default()
        }
    }

    /// Adds a duplication probability.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Adds an extra-delay distribution: with probability `p` a copy is
    /// delayed by a uniform draw from `[0, max)`.
    #[must_use]
    pub fn with_delay(mut self, p: f64, max: SimDuration) -> Self {
        self.delay_prob = p;
        self.max_extra_delay = max;
        self
    }
}

/// One link-matching rule. `None` endpoints are wildcards; the first
/// matching rule in [`FaultPlan::link_rules`] wins.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkRule {
    /// Sender filter (`None` matches every sender).
    pub from: Option<NodeId>,
    /// Receiver filter (`None` matches every receiver).
    pub to: Option<NodeId>,
    /// The fault distribution applied to matching messages.
    pub faults: LinkFaults,
}

impl LinkRule {
    /// A rule matching every node-to-node link.
    #[must_use]
    pub fn all(faults: LinkFaults) -> Self {
        LinkRule {
            from: None,
            to: None,
            faults,
        }
    }

    /// A rule for the directed link `from → to`.
    #[must_use]
    pub fn between(from: NodeId, to: NodeId, faults: LinkFaults) -> Self {
        LinkRule {
            from: Some(from),
            to: Some(to),
            faults,
        }
    }

    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// A directed partition active over `[start, heal)`: messages from any
/// node in `from` to any node in `to` are dropped while active. Empty
/// endpoint sets are wildcards (every node).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionWindow {
    /// Senders cut by the partition (empty = all nodes).
    pub from: Vec<NodeId>,
    /// Receivers cut by the partition (empty = all nodes).
    pub to: Vec<NodeId>,
    /// Offset from run start at which the partition begins.
    pub start: SimDuration,
    /// Offset from run start at which the partition heals.
    pub heal: SimDuration,
}

impl PartitionWindow {
    /// A directed partition cutting `from → to` over `[start, heal)`.
    #[must_use]
    pub fn directed(from: &[NodeId], to: &[NodeId], start: SimDuration, heal: SimDuration) -> Self {
        PartitionWindow {
            from: from.to_vec(),
            to: to.to_vec(),
            start,
            heal,
        }
    }

    fn drops(&self, from: NodeId, to: NodeId, elapsed: SimDuration) -> bool {
        if elapsed < self.start || elapsed >= self.heal {
            return false;
        }
        let from_hit = self.from.is_empty() || self.from.contains(&from);
        let to_hit = self.to.is_empty() || self.to.contains(&to);
        from_hit && to_hit
    }
}

/// A per-node fsync-latency straggler: every fsync at `node` takes
/// `extra` plus a uniform jitter draw from `[0, jitter]` longer than the
/// CPU model's base cost. Replaces the fixed-latency disk assumption.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskLag {
    /// The straggling node.
    pub node: NodeId,
    /// Deterministic extra latency added to every fsync.
    pub extra: SimDuration,
    /// Upper bound (inclusive) of the per-fsync uniform jitter draw.
    pub jitter: SimDuration,
}

/// A declarative, composable chaos schedule. Build one with the fluent
/// helpers and attach it via `SimHarness::with_fault_plan`; everything
/// it injects is deterministic in the run seed.
///
/// ```
/// use sbft_sim::{DiskLag, FaultPlan, LinkFaults, PartitionWindow};
/// use sbft_types::{NodeId, SimDuration};
///
/// let plan = FaultPlan::new()
///     .lossy_node(NodeId(3), LinkFaults::lossy(0.15))
///     .partition(PartitionWindow::directed(
///         &[NodeId(0)],
///         &[NodeId(3)],
///         SimDuration::from_millis(200),
///         SimDuration::from_millis(260),
///     ))
///     .disk_lag(DiskLag {
///         node: NodeId(1),
///         extra: SimDuration::from_micros(300),
///         jitter: SimDuration::from_micros(200),
///     });
/// assert!(!plan.is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Link fault rules; first match wins.
    pub link_rules: Vec<LinkRule>,
    /// Directed partition windows (all active windows drop).
    pub partitions: Vec<PartitionWindow>,
    /// Per-node fsync stragglers (first match per node wins).
    pub disk_lags: Vec<DiskLag>,
    /// Crash-restart schedule; entries may overlap in time, crashing
    /// several nodes simultaneously.
    pub crashes: Vec<CrashRestart>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.link_rules.is_empty()
            && self.partitions.is_empty()
            && self.disk_lags.is_empty()
            && self.crashes.is_empty()
    }

    /// Appends a link rule.
    #[must_use]
    pub fn link(mut self, rule: LinkRule) -> Self {
        self.link_rules.push(rule);
        self
    }

    /// Applies `faults` to every link touching `node` (both directions).
    #[must_use]
    pub fn lossy_node(mut self, node: NodeId, faults: LinkFaults) -> Self {
        self.link_rules.push(LinkRule {
            from: Some(node),
            to: None,
            faults,
        });
        self.link_rules.push(LinkRule {
            from: None,
            to: Some(node),
            faults,
        });
        self
    }

    /// Appends a partition window.
    #[must_use]
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Isolates `node` in both directions over `[start, heal)`.
    #[must_use]
    pub fn isolate(mut self, node: NodeId, start: SimDuration, heal: SimDuration) -> Self {
        self.partitions
            .push(PartitionWindow::directed(&[node], &[], start, heal));
        self.partitions
            .push(PartitionWindow::directed(&[], &[node], start, heal));
        self
    }

    /// Appends a disk-lag straggler.
    #[must_use]
    pub fn disk_lag(mut self, lag: DiskLag) -> Self {
        self.disk_lags.push(lag);
        self
    }

    /// Appends a crash-restart (may overlap others in time).
    #[must_use]
    pub fn crash(mut self, crash: CrashRestart) -> Self {
        self.crashes.push(crash);
        self
    }

    fn rule_for(&self, from: NodeId, to: NodeId) -> Option<&LinkFaults> {
        self.link_rules
            .iter()
            .find(|r| r.matches(from, to))
            .map(|r| &r.faults)
    }

    fn partitioned(&self, from: NodeId, to: NodeId, elapsed: SimDuration) -> bool {
        self.partitions.iter().any(|w| w.drops(from, to, elapsed))
    }

    fn disk_lag_for(&self, node: NodeId) -> Option<&DiskLag> {
        self.disk_lags.iter().find(|l| l.node == node)
    }
}

/// The runtime side of a [`FaultPlan`]: owns the seeded RNG and the
/// `faults.*` counters, and answers the harness's two questions — what
/// happens to this message, and how slow is this fsync.
pub struct FaultState {
    plan: FaultPlan,
    origin: SimTime,
    rng: StdRng,
    dropped: Counter,
    duplicated: Counter,
    delayed: Counter,
    partition_drops: Counter,
    fsync_lags: Counter,
}

impl FaultState {
    /// Instantiates a plan for one run: the RNG is derived from the run
    /// seed (so the fault schedule is reproducible) and counters are
    /// registered under `faults.*`. `origin` anchors partition windows,
    /// which are expressed as offsets from run start.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64, origin: SimTime, registry: &Registry) -> Self {
        FaultState {
            plan,
            origin,
            // Decorrelate from workload generators sharing the run seed.
            rng: StdRng::seed_from_u64(seed ^ 0xfa17_91a9_5c4a_0b2d),
            dropped: registry.counter("faults.messages_dropped"),
            duplicated: registry.counter("faults.messages_duplicated"),
            delayed: registry.counter("faults.messages_delayed"),
            partition_drops: registry.counter("faults.partition_drops"),
            fsync_lags: registry.counter("faults.fsync_lags"),
        }
    }

    /// The crash-restart schedule carried by the plan.
    #[must_use]
    pub fn crashes(&self) -> &[CrashRestart] {
        &self.plan.crashes
    }

    /// Decides the fate of one node-to-node message: the returned vector
    /// holds one extra-delay per delivered copy, so an empty vector means
    /// the message is dropped and two entries mean it was duplicated.
    ///
    /// Partitions are checked first and consume no randomness; loss,
    /// duplication and delay draw from the RNG only when their
    /// probability is non-zero, keeping the random stream minimal and
    /// stable when rules are partially disabled.
    pub fn deliveries(&mut self, from: NodeId, to: NodeId, now: SimTime) -> Vec<SimDuration> {
        if self.plan.partitioned(from, to, now.since(self.origin)) {
            self.partition_drops.inc();
            return Vec::new();
        }
        let Some(faults) = self.plan.rule_for(from, to).copied() else {
            return vec![SimDuration::ZERO];
        };
        if faults.loss > 0.0 && self.rng.gen_bool(faults.loss) {
            self.dropped.inc();
            return Vec::new();
        }
        let copies = if faults.duplicate > 0.0 && self.rng.gen_bool(faults.duplicate) {
            self.duplicated.inc();
            2
        } else {
            1
        };
        (0..copies).map(|_| self.extra_delay(&faults)).collect()
    }

    fn extra_delay(&mut self, faults: &LinkFaults) -> SimDuration {
        if faults.delay_prob > 0.0
            && !faults.max_extra_delay.is_zero()
            && self.rng.gen_bool(faults.delay_prob)
        {
            self.delayed.inc();
            let bound = faults.max_extra_delay.as_micros().max(1);
            SimDuration::from_micros(self.rng.gen_range(0u64..bound))
        } else {
            SimDuration::ZERO
        }
    }

    /// Extra fsync latency for `node` — zero unless the plan declares a
    /// disk-lag straggler for it.
    pub fn fsync_extra(&mut self, node: NodeId) -> SimDuration {
        let Some(lag) = self.plan.disk_lag_for(node).copied() else {
            return SimDuration::ZERO;
        };
        self.fsync_lags.inc();
        let jitter = if lag.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.rng.gen_range(0u64..lag.jitter.as_micros() + 1))
        };
        lag.extra + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new()
    }

    #[test]
    fn empty_plan_delivers_everything_untouched() {
        let reg = registry();
        let mut state = FaultState::new(FaultPlan::new(), 1, SimTime::ZERO, &reg);
        for _ in 0..100 {
            assert_eq!(
                state.deliveries(NodeId(0), NodeId(1), SimTime::ZERO),
                vec![SimDuration::ZERO]
            );
        }
        assert_eq!(reg.counter_value("faults.messages_dropped"), 0);
    }

    #[test]
    fn loss_rule_drops_and_counts() {
        let reg = registry();
        let plan = FaultPlan::new().link(LinkRule::all(LinkFaults::lossy(1.0)));
        let mut state = FaultState::new(plan, 1, SimTime::ZERO, &reg);
        assert!(state
            .deliveries(NodeId(0), NodeId(1), SimTime::ZERO)
            .is_empty());
        assert_eq!(reg.counter_value("faults.messages_dropped"), 1);
    }

    #[test]
    fn first_matching_rule_wins() {
        let reg = registry();
        let plan = FaultPlan::new()
            .link(LinkRule::between(
                NodeId(0),
                NodeId(1),
                LinkFaults::default(),
            ))
            .link(LinkRule::all(LinkFaults::lossy(1.0)));
        let mut state = FaultState::new(plan, 1, SimTime::ZERO, &reg);
        // The specific clean rule shadows the catch-all loss rule.
        assert_eq!(
            state.deliveries(NodeId(0), NodeId(1), SimTime::ZERO),
            vec![SimDuration::ZERO]
        );
        assert!(state
            .deliveries(NodeId(1), NodeId(0), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn partition_window_cuts_directed_links_and_heals() {
        let reg = registry();
        let plan = FaultPlan::new().partition(PartitionWindow::directed(
            &[NodeId(0)],
            &[NodeId(3)],
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        ));
        let origin = SimTime::ZERO + SimDuration::from_millis(5);
        let mut state = FaultState::new(plan, 1, origin, &reg);
        let at = |ms| origin + SimDuration::from_millis(ms);
        // Before, during (directed only) and after heal.
        assert!(!state.deliveries(NodeId(0), NodeId(3), at(5)).is_empty());
        assert!(state.deliveries(NodeId(0), NodeId(3), at(15)).is_empty());
        assert!(!state.deliveries(NodeId(3), NodeId(0), at(15)).is_empty());
        assert!(!state.deliveries(NodeId(0), NodeId(3), at(25)).is_empty());
        assert_eq!(reg.counter_value("faults.partition_drops"), 1);
    }

    #[test]
    fn isolate_cuts_both_directions() {
        let reg = registry();
        let plan =
            FaultPlan::new().isolate(NodeId(2), SimDuration::ZERO, SimDuration::from_millis(10));
        let mut state = FaultState::new(plan, 1, SimTime::ZERO, &reg);
        assert!(state
            .deliveries(NodeId(2), NodeId(0), SimTime::ZERO)
            .is_empty());
        assert!(state
            .deliveries(NodeId(1), NodeId(2), SimTime::ZERO)
            .is_empty());
        assert!(!state
            .deliveries(NodeId(0), NodeId(1), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn duplication_and_delay_inject_extra_copies() {
        let reg = registry();
        let plan = FaultPlan::new().link(LinkRule::all(
            LinkFaults::default()
                .with_duplicate(1.0)
                .with_delay(1.0, SimDuration::from_millis(2)),
        ));
        let mut state = FaultState::new(plan, 7, SimTime::ZERO, &reg);
        let copies = state.deliveries(NodeId(0), NodeId(1), SimTime::ZERO);
        assert_eq!(copies.len(), 2);
        assert_eq!(reg.counter_value("faults.messages_duplicated"), 1);
        assert_eq!(reg.counter_value("faults.messages_delayed"), 2);
    }

    #[test]
    fn disk_lag_applies_only_to_the_straggler() {
        let reg = registry();
        let plan = FaultPlan::new().disk_lag(DiskLag {
            node: NodeId(1),
            extra: SimDuration::from_micros(300),
            jitter: SimDuration::from_micros(100),
        });
        let mut state = FaultState::new(plan, 3, SimTime::ZERO, &reg);
        assert_eq!(state.fsync_extra(NodeId(0)), SimDuration::ZERO);
        let lag = state.fsync_extra(NodeId(1));
        assert!(lag >= SimDuration::from_micros(300));
        assert!(lag <= SimDuration::from_micros(400));
        assert_eq!(reg.counter_value("faults.fsync_lags"), 1);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = || {
            let reg = registry();
            let plan = FaultPlan::new().link(LinkRule::all(
                LinkFaults::lossy(0.3)
                    .with_duplicate(0.3)
                    .with_delay(0.5, SimDuration::from_millis(1)),
            ));
            let mut state = FaultState::new(plan, 99, SimTime::ZERO, &reg);
            (0..200)
                .map(|_| state.deliveries(NodeId(0), NodeId(1), SimTime::ZERO))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
