//! Integration tests for the batch lifecycle tracer: deterministic
//! Chrome-trace export, complete and monotone span sequences per
//! committed batch, and the PR 5 chained cross-shard staircase.

use sbft_core::SystemBuilder;
use sbft_sim::{SimHarness, SimParams};
use sbft_telemetry::export::marks;
use sbft_telemetry::{chrome_trace, stage_breakdown, MemorySink, SpanEvent, Stage, TraceSink};
use sbft_types::{SimDuration, SystemConfig};
use std::sync::Arc;

fn traced_run(config: SystemConfig, clients: usize) -> Vec<SpanEvent> {
    let params = SimParams {
        duration: SimDuration::from_millis(250),
        warmup: SimDuration::from_millis(50),
        num_clients: clients,
        seed: 11,
        ..SimParams::default()
    };
    let system = SystemBuilder::new(config).clients(clients).build();
    let sink = Arc::new(MemorySink::new());
    let metrics = SimHarness::new(system, params)
        .with_tracer(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .run();
    assert!(metrics.committed_txns > 0, "run must commit");
    sink.events()
}

fn pbft_config() -> SystemConfig {
    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.workload.num_records = 2_000;
    cfg.workload.batch_size = 10;
    cfg.workload.num_clients = 40;
    cfg
}

#[test]
fn identical_runs_export_byte_identical_chrome_traces() {
    let a = chrome_trace(&traced_run(pbft_config(), 40));
    let b = chrome_trace(&traced_run(pbft_config(), 40));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed + config must export identical bytes");
}

#[test]
fn committed_batches_carry_a_complete_monotone_span_sequence() {
    let events = traced_run(pbft_config(), 40);
    let marks = marks(&events);
    let mut responded = 0;
    for (trace, stage_times) in &marks {
        if !stage_times.contains_key(&Stage::Respond) {
            // Batches in flight at the end of the run stay partial.
            continue;
        }
        responded += 1;
        for stage in Stage::PIPELINE {
            assert!(
                stage_times.contains_key(&stage),
                "trace {trace} responded without a {stage:?} marker"
            );
        }
        for pair in Stage::PIPELINE.windows(2) {
            assert!(
                stage_times[&pair[0]] <= stage_times[&pair[1]],
                "trace {trace}: {:?} after {:?}",
                pair[0],
                pair[1]
            );
        }
    }
    assert!(responded > 5, "only {responded} traces responded");

    // The breakdown table derives from the same markers: every pipeline
    // stage row must be populated.
    let rows = stage_breakdown(&events);
    for row in &rows {
        assert!(row.count > 0, "stage {} has no samples", row.stage);
    }
}

#[test]
fn cross_shard_batches_trace_the_chained_staircase() {
    // Known read-write sets over 8 shards *without* ordering lanes:
    // nearly every batch spans shards, so its concurrency-control check
    // runs as the PR 5 lock-ordered chain — shard slice i+1 starts only
    // after slice i completes.
    let mut cfg = pbft_config();
    cfg.conflict_handling = sbft_types::ConflictHandling::KnownRwSets;
    cfg.workload.batch_size = 20;
    // Multi-key transactions so read-write sets span shards.
    cfg.workload.ops_per_txn = 4;
    cfg.sharding = sbft_types::ShardingConfig::with_shards(8);
    cfg.sharding.ordering_lanes = false;
    let events = traced_run(cfg, 60);

    // Group the slice markers per trace: starts and ends keyed by shard.
    use std::collections::BTreeMap;
    let mut slices: BTreeMap<u64, Vec<(u64, u32)>> = BTreeMap::new();
    for e in &events {
        if e.stage == Stage::ShardSliceStart {
            slices
                .entry(e.trace)
                .or_default()
                .push((e.at.as_micros(), e.shard.expect("slice has shard")));
        }
    }
    let staircases = slices
        .values()
        .filter(|starts| starts.len() >= 2)
        .inspect(|starts| {
            let mut sorted = (*starts).clone();
            sorted.sort_unstable();
            // Distinct shards, strictly increasing start times: the
            // chained staircase (unchained single-home slices would all
            // start at the batch's arrival instant).
            for pair in sorted.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "chained slices must start strictly later than their predecessor"
                );
            }
        })
        .count();
    assert!(
        staircases > 0,
        "no cross-shard batch traced a multi-slice staircase"
    );
}
