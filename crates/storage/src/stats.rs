//! Operation counters for the data-store.
//!
//! The experiments report executor read traffic and verifier write traffic;
//! these counters are cheap relaxed atomics so they can be read while the
//! thread runtime is live.

use std::sync::atomic::{AtomicU64, Ordering};

/// Read/write/abort counters.
#[derive(Debug, Default)]
pub struct StorageStats {
    reads: AtomicU64,
    writes: AtomicU64,
    stale_read_rejections: AtomicU64,
}

impl StorageStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read access.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write access.
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transaction rejected because of stale reads.
    pub fn record_stale_read_rejection(&self) {
        self.stale_read_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Total reads so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total writes so far.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total stale-read rejections so far.
    #[must_use]
    pub fn stale_read_rejections(&self) -> u64 {
        self.stale_read_rejections.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let stats = StorageStats::new();
        assert_eq!(stats.reads(), 0);
        assert_eq!(stats.writes(), 0);
        assert_eq!(stats.stale_read_rejections(), 0);
        stats.record_read();
        stats.record_read();
        stats.record_write();
        stats.record_stale_read_rejection();
        assert_eq!(stats.reads(), 2);
        assert_eq!(stats.writes(), 1);
        assert_eq!(stats.stale_read_rejections(), 1);
    }

    #[test]
    fn counters_are_thread_safe() {
        use std::sync::Arc;
        let stats = Arc::new(StorageStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&stats);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.reads(), 4000);
    }
}
