//! Read-only storage access for executors.
//!
//! Executors "connect with the storage S and fetch the required data.
//! However, executors do not write to the storage. Any intermediate
//! results are stored locally" (Section IV-C). [`StorageReader`] is that
//! read-only facade: it can fetch values and versions but exposes no write
//! path, so the type system enforces the paper's access-control rule that
//! neither edge devices nor executors may update the store.

use crate::kvstore::{StoreEntry, VersionedStore};
use sbft_types::{Key, ReadWriteSet, Value, Version};
use std::sync::Arc;

/// A read-only handle on the on-premise data-store.
#[derive(Clone, Debug)]
pub struct StorageReader {
    store: Arc<VersionedStore>,
}

impl StorageReader {
    /// Wraps a store in a read-only facade.
    #[must_use]
    pub fn new(store: Arc<VersionedStore>) -> Self {
        StorageReader { store }
    }

    /// Fetches the current value and version of a key. Missing keys read as
    /// the default value at version 0, which lets transactions insert new
    /// keys (blind writes) without a separate existence protocol.
    #[must_use]
    pub fn fetch(&self, key: Key) -> StoreEntry {
        self.store.get(key).unwrap_or(StoreEntry {
            value: Value::new(0),
            version: Version(0),
        })
    }

    /// Fetches a set of keys, recording each read (key, version) into the
    /// provided read-write set — the "fetch rw state from storage S" step
    /// of Figure 3 line 18.
    pub fn fetch_into(&self, keys: &[Key], rwset: &mut ReadWriteSet) -> Vec<StoreEntry> {
        keys.iter()
            .map(|&key| {
                let entry = self.fetch(key);
                rwset.record_read(key, entry.version);
                entry
            })
            .collect()
    }

    /// Number of records in the underlying store (used by workload
    /// generators to pick keys).
    #[must_use]
    pub fn num_records(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader_with(keys: &[(u64, u64)]) -> StorageReader {
        let store = Arc::new(VersionedStore::new());
        store.load(keys.iter().map(|&(k, v)| (Key(k), Value::new(v))));
        StorageReader::new(store)
    }

    #[test]
    fn fetch_returns_loaded_values() {
        let reader = reader_with(&[(1, 11), (2, 22)]);
        assert_eq!(reader.fetch(Key(1)).value, Value::new(11));
        assert_eq!(reader.fetch(Key(1)).version, Version(1));
        assert_eq!(reader.num_records(), 2);
    }

    #[test]
    fn missing_keys_read_as_default_at_version_zero() {
        let reader = reader_with(&[]);
        let entry = reader.fetch(Key(42));
        assert_eq!(entry.value, Value::new(0));
        assert_eq!(entry.version, Version(0));
    }

    #[test]
    fn fetch_into_records_reads() {
        let reader = reader_with(&[(1, 11), (2, 22)]);
        let mut rw = ReadWriteSet::new();
        let entries = reader.fetch_into(&[Key(1), Key(2), Key(3)], &mut rw);
        assert_eq!(entries.len(), 3);
        assert_eq!(rw.reads.len(), 3);
        assert_eq!(rw.reads[0], (Key(1), Version(1)));
        assert_eq!(rw.reads[2], (Key(3), Version(0)));
        assert!(rw.writes.is_empty(), "reader never writes");
    }

    #[test]
    fn reader_observes_later_verifier_writes() {
        let store = Arc::new(VersionedStore::new());
        store.load([(Key(1), Value::new(1))]);
        let reader = StorageReader::new(Arc::clone(&store));
        assert_eq!(reader.fetch(Key(1)).version, Version(1));
        store.put(Key(1), Value::new(2));
        assert_eq!(reader.fetch(Key(1)).version, Version(2));
        assert_eq!(reader.fetch(Key(1)).value, Value::new(2));
    }
}
