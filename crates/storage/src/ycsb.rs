//! YCSB-style record population.
//!
//! The evaluation "uses YCSB to create key-value transactions that access
//! a database of 600 k records" (Section IX, *Benchmark*). This module
//! provides the deterministic record layout: dense keys `0..num_records`
//! with 1 KiB records whose payload is a deterministic function of the key,
//! so every honest executor computes identical results without shipping
//! real 1 KiB blobs around the simulator.

use crate::kvstore::VersionedStore;
use sbft_types::{Key, Value};
use std::sync::Arc;

/// Number of records in the paper's YCSB table.
pub const PAPER_NUM_RECORDS: u64 = 600_000;

/// Logical YCSB record size in bytes.
pub const RECORD_SIZE_BYTES: u32 = 1024;

/// The key of the `i`-th YCSB record.
#[must_use]
pub fn ycsb_key(i: u64) -> Key {
    Key(i)
}

/// The initial value of the `i`-th YCSB record: a deterministic payload
/// standing in for the 1 KiB random string YCSB would generate.
#[must_use]
pub fn ycsb_value(i: u64) -> Value {
    // SplitMix64 of the key; any fixed bijective mixing works.
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Value::with_len(z ^ (z >> 31), RECORD_SIZE_BYTES)
}

/// A populated YCSB table wrapping the versioned store.
#[derive(Clone, Debug)]
pub struct YcsbTable {
    store: Arc<VersionedStore>,
    num_records: u64,
}

impl YcsbTable {
    /// Populates a fresh store with `num_records` records.
    #[must_use]
    pub fn populate(num_records: u64) -> Self {
        let store = Arc::new(VersionedStore::new());
        store.load((0..num_records).map(|i| (ycsb_key(i), ycsb_value(i))));
        YcsbTable { store, num_records }
    }

    /// Populates the paper's 600 k-record table.
    #[must_use]
    pub fn populate_paper_size() -> Self {
        Self::populate(PAPER_NUM_RECORDS)
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }

    /// Number of records loaded.
    #[must_use]
    pub fn num_records(&self) -> u64 {
        self.num_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::Version;

    #[test]
    fn populate_loads_exactly_n_records() {
        let table = YcsbTable::populate(1_000);
        assert_eq!(table.store().len(), 1_000);
        assert_eq!(table.num_records(), 1_000);
    }

    #[test]
    fn records_start_at_version_one() {
        let table = YcsbTable::populate(10);
        for i in 0..10 {
            assert_eq!(table.store().version_of(ycsb_key(i)), Version(1));
        }
    }

    #[test]
    fn values_are_deterministic_and_distinct() {
        assert_eq!(ycsb_value(5), ycsb_value(5));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1_000 {
            assert!(seen.insert(ycsb_value(i).data), "collision at {i}");
        }
    }

    #[test]
    fn records_model_one_kib_payloads() {
        assert_eq!(ycsb_value(0).logical_len, 1024);
    }

    #[test]
    fn paper_size_constant_matches_evaluation_setup() {
        assert_eq!(PAPER_NUM_RECORDS, 600_000);
    }
}
