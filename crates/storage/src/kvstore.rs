//! The versioned, sharded key-value store backing the on-premise storage.
//!
//! Every key carries a [`Version`] that is bumped on each committed write.
//! Versions are what make the verifier's read-set check (`rw' = rw`,
//! Figure 3 line 32) cheap: instead of comparing full values, the verifier
//! compares the version an executor observed at read time with the current
//! version. The store is sharded and each shard is guarded by a
//! `parking_lot::RwLock`, so the thread runtime can drive many executor
//! reads concurrently with verifier writes.

use parking_lot::RwLock;
use sbft_types::{Key, SbftError, SbftResult, Value, Version};
use std::collections::HashMap;

use crate::stats::StorageStats;

/// A value together with its current version.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreEntry {
    /// The stored value.
    pub value: Value,
    /// Monotonically increasing version, starting at 1 on first insert.
    pub version: Version,
}

/// The sharded, versioned key-value store.
#[derive(Debug)]
pub struct VersionedStore {
    shards: Vec<RwLock<HashMap<Key, StoreEntry>>>,
    stats: StorageStats,
}

/// Default number of shards; a power of two so the shard index is a mask.
const DEFAULT_SHARDS: usize = 64;

impl Default for VersionedStore {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionedStore {
    /// Creates an empty store with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty store with an explicit shard count (rounded up to a
    /// power of two).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        VersionedStore {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            stats: StorageStats::new(),
        }
    }

    fn shard_for(&self, key: Key) -> &RwLock<HashMap<Key, StoreEntry>> {
        // Multiplicative hashing spreads dense YCSB keys across shards.
        let idx =
            (key.0.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Reads a key, returning its value and current version.
    #[must_use]
    pub fn get(&self, key: Key) -> Option<StoreEntry> {
        self.stats.record_read();
        self.shard_for(key).read().get(&key).copied()
    }

    /// Reads a key, returning an error if it is absent.
    pub fn try_get(&self, key: Key) -> SbftResult<StoreEntry> {
        self.get(key).ok_or(SbftError::KeyNotFound(key.0))
    }

    /// The current version of a key (`Version(0)` if the key is absent;
    /// versions of existing keys start at 1).
    #[must_use]
    pub fn version_of(&self, key: Key) -> Version {
        self.shard_for(key)
            .read()
            .get(&key)
            .map_or(Version(0), |e| e.version)
    }

    /// Writes a key, bumping its version, and returns the new version.
    pub fn put(&self, key: Key, value: Value) -> Version {
        self.stats.record_write();
        let mut shard = self.shard_for(key).write();
        let entry = shard.entry(key).or_insert(StoreEntry {
            value,
            version: Version(0),
        });
        entry.value = value;
        entry.version = Version(entry.version.0 + 1);
        entry.version
    }

    /// Applies a set of writes atomically with respect to each key
    /// (the verifier is the only writer, so per-key atomicity suffices).
    pub fn apply_writes(&self, writes: &[(Key, Value)]) {
        for (key, value) in writes {
            self.put(*key, *value);
        }
    }

    /// Bulk-loads initial records without counting them in the statistics.
    pub fn load<I: IntoIterator<Item = (Key, Value)>>(&self, records: I) {
        for (key, value) in records {
            let mut shard = self.shard_for(key).write();
            shard.insert(
                key,
                StoreEntry {
                    value,
                    version: Version(1),
                },
            );
        }
    }

    /// Number of keys currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the store holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation statistics collected so far.
    #[must_use]
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// Number of shards (for tests and tuning).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_bumps_versions_monotonically() {
        let store = VersionedStore::new();
        assert_eq!(store.version_of(Key(1)), Version(0));
        let v1 = store.put(Key(1), Value::new(10));
        let v2 = store.put(Key(1), Value::new(20));
        assert_eq!(v1, Version(1));
        assert_eq!(v2, Version(2));
        assert_eq!(store.get(Key(1)).unwrap().value, Value::new(20));
    }

    #[test]
    fn get_missing_key_is_none_and_try_get_errors() {
        let store = VersionedStore::new();
        assert!(store.get(Key(99)).is_none());
        assert_eq!(
            store.try_get(Key(99)).unwrap_err(),
            SbftError::KeyNotFound(99)
        );
    }

    #[test]
    fn load_sets_version_one_for_all_records() {
        let store = VersionedStore::new();
        store.load((0..100).map(|i| (Key(i), Value::new(i))));
        assert_eq!(store.len(), 100);
        for i in 0..100 {
            assert_eq!(store.version_of(Key(i)), Version(1));
        }
    }

    #[test]
    fn apply_writes_touches_every_key() {
        let store = VersionedStore::new();
        store.apply_writes(&[(Key(1), Value::new(1)), (Key(2), Value::new(2))]);
        assert_eq!(store.get(Key(1)).unwrap().value, Value::new(1));
        assert_eq!(store.get(Key(2)).unwrap().value, Value::new(2));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(VersionedStore::with_shards(3).shard_count(), 4);
        assert_eq!(VersionedStore::with_shards(64).shard_count(), 64);
        assert_eq!(VersionedStore::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = VersionedStore::with_shards(16);
        store.load((0..1_000).map(|i| (Key(i), Value::new(i))));
        // With 1000 dense keys and 16 shards, every shard should hold
        // something if the hash spreads them.
        let occupied = store.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert_eq!(occupied, 16);
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let store = VersionedStore::new();
        store.put(Key(1), Value::new(1));
        let _ = store.get(Key(1));
        let _ = store.get(Key(2));
        assert_eq!(store.stats().reads(), 2);
        assert_eq!(store.stats().writes(), 1);
    }

    #[test]
    fn concurrent_reads_and_writes_do_not_lose_updates() {
        use std::sync::Arc;
        let store = Arc::new(VersionedStore::new());
        store.load([(Key(0), Value::new(0))]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        store.put(Key(0), Value::new(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 1 initial load (version 1) + 800 writes.
        assert_eq!(store.version_of(Key(0)), Version(801));
    }
}
