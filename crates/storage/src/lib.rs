//! # sbft-storage
//!
//! The trusted on-premise data-store `S` of the serverless-edge
//! architecture, plus the pieces the verifier and the executors need to
//! interact with it:
//!
//! * [`kvstore`] — a sharded, versioned, thread-safe key-value store. Every
//!   write bumps the key's version; the verifier's concurrency-control
//!   check compares the versions an executor read against the current
//!   versions before applying a transaction's writes.
//! * [`occ`] — the concurrency-control check (`ccheck`, Figure 3 lines
//!   30–35): *"if the read sets match, update the write sets"*.
//! * [`executor_access`] — the read-only access path executors use to fetch
//!   read-write-set values ("executors do not write to the storage",
//!   Section IV-C), including access statistics.
//! * [`geo`] — the region-partitioned view: every shard's partition is
//!   homed in a region of the deployment's [`sbft_types::RegionPartition`],
//!   and accesses are classified local vs cross-region so latency-aware
//!   runtimes can charge the difference.
//! * [`ycsb`] — population of the store with the 600 k-record YCSB table
//!   used throughout the evaluation.
//! * [`stats`] — operation counters exposed for the experiments.
//!
//! The data-store and its wrapper (the verifier) are trusted and honest by
//! assumption (Section III), so this crate contains no byzantine behaviour;
//! all fault injection lives in the shim and executor layers.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod executor_access;
pub mod geo;
pub mod kvstore;
pub mod occ;
pub mod stats;
pub mod ycsb;

pub use executor_access::StorageReader;
pub use geo::GeoPartitionedStore;
pub use kvstore::{StoreEntry, VersionedStore};
pub use occ::{ConcurrencyChecker, OccOutcome};
pub use stats::StorageStats;
pub use ycsb::{ycsb_key, ycsb_value, YcsbTable};
