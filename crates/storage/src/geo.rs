//! The region-partitioned view of the on-premise store.
//!
//! When a deployment geo-partitions its storage, every execution shard's
//! partition is replicated to a *home region* (the deterministic
//! [`RegionPartition`] shared by the whole workspace). The store's data
//! and versioning semantics are untouched — the view only adds the
//! *placement* dimension: which region a key's partition lives in, which
//! regions a read-write footprint touches, and counters separating local
//! from remote accesses. Runtimes that model latency (the simulator)
//! use the classification to charge inter-region round trips on
//! executor ⇄ storage fetches; correctness never depends on it.

use crate::kvstore::{StoreEntry, VersionedStore};
use sbft_telemetry::{Counter, Registry};
use sbft_types::{Key, Region, RegionPartition};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A [`VersionedStore`] seen through the geo-partitioning lens.
#[derive(Debug)]
pub struct GeoPartitionedStore {
    store: Arc<VersionedStore>,
    partition: RegionPartition,
    local_fetches: Counter,
    remote_fetches: Counter,
}

impl GeoPartitionedStore {
    /// Wraps a store with the deployment's shard → region map.
    #[must_use]
    pub fn new(store: Arc<VersionedStore>, partition: RegionPartition) -> Self {
        GeoPartitionedStore {
            store,
            partition,
            local_fetches: Counter::new(),
            remote_fetches: Counter::new(),
        }
    }

    /// Re-homes the locality counters into `registry` under
    /// `storage.geo.*`.
    pub fn register_metrics(&mut self, registry: &Registry) {
        self.local_fetches = registry.counter("storage.geo.local_fetches");
        self.remote_fetches = registry.counter("storage.geo.remote_fetches");
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &Arc<VersionedStore> {
        &self.store
    }

    /// The shard → home-region map in force.
    #[must_use]
    pub fn partition(&self) -> &RegionPartition {
        &self.partition
    }

    /// The home region of the partition holding `key` (delegates to the
    /// shared [`RegionPartition`] map).
    #[must_use]
    pub fn home_of_key(&self, key: Key) -> Region {
        self.partition.home_of_key(key)
    }

    /// The set of distinct home regions a key collection touches — what
    /// an executor must reach to fetch a batch's read-write sets.
    #[must_use]
    pub fn regions_touched<I: IntoIterator<Item = Key>>(&self, keys: I) -> BTreeSet<Region> {
        keys.into_iter().map(|k| self.home_of_key(k)).collect()
    }

    /// Records one bulk fetch from the partition homed in `home`, issued
    /// by an accessor running in `from`; returns whether it crossed
    /// regions. Latency-aware runtimes call this once per touched
    /// partition per executor (executors fetch read-write sets in bulk).
    pub fn record_partition_fetch(&self, from: Region, home: Region) -> bool {
        let remote = home != from;
        if remote {
            self.remote_fetches.inc();
        } else {
            self.local_fetches.inc();
        }
        remote
    }

    /// Reads a key on behalf of an accessor running in `from`, counting
    /// the access as local (accessor sits in the key's home region) or
    /// remote. Returns the entry and whether the fetch crossed regions.
    #[must_use]
    pub fn fetch_from(&self, from: Region, key: Key) -> (Option<StoreEntry>, bool) {
        let remote = self.record_partition_fetch(from, self.home_of_key(key));
        (self.store.get(key), remote)
    }

    /// Fetches counted as local so far.
    #[must_use]
    pub fn local_fetches(&self) -> u64 {
        self.local_fetches.get()
    }

    /// Fetches counted as remote (cross-region) so far.
    #[must_use]
    pub fn remote_fetches(&self) -> u64 {
        self.remote_fetches.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{RegionSet, ShardId, Value};

    fn view(regions: usize, shards: usize) -> GeoPartitionedStore {
        let store = Arc::new(VersionedStore::new());
        store.load((0..1_000u64).map(|k| (Key(k), Value::new(k))));
        GeoPartitionedStore::new(
            store,
            RegionPartition::new(RegionSet::first_n(regions), shards),
        )
    }

    #[test]
    fn home_of_key_agrees_with_the_canonical_shard_map() {
        let geo = view(3, 8);
        for k in 0..1_000u64 {
            let shard = ShardId::of_key(Key(k), 8);
            assert_eq!(geo.home_of_key(Key(k)), geo.partition().home_of(shard));
        }
    }

    #[test]
    fn regions_touched_collects_distinct_homes() {
        let geo = view(3, 8);
        // Enough dense keys touch every region the 8 shards spread over.
        let all = geo.regions_touched((0..1_000u64).map(Key));
        assert_eq!(all.len(), 3);
        // A key set from one shard touches exactly its home region.
        let home = geo.home_of_key(Key(1));
        let same: Vec<Key> = (0..1_000u64)
            .map(Key)
            .filter(|k| geo.home_of_key(*k) == home)
            .take(10)
            .collect();
        assert_eq!(geo.regions_touched(same), BTreeSet::from([home]));
    }

    #[test]
    fn fetch_from_classifies_and_counts_local_vs_remote() {
        let geo = view(3, 8);
        let key = Key(7);
        let home = geo.home_of_key(key);
        let (entry, remote) = geo.fetch_from(home, key);
        assert_eq!(entry.unwrap().value, Value::new(7));
        assert!(!remote);
        let elsewhere = RegionSet::first_n(3)
            .regions()
            .iter()
            .copied()
            .find(|r| *r != home)
            .unwrap();
        let (_, remote) = geo.fetch_from(elsewhere, key);
        assert!(remote);
        assert_eq!(geo.local_fetches(), 1);
        assert_eq!(geo.remote_fetches(), 1);
    }

    #[test]
    fn single_region_partition_makes_every_fetch_local() {
        let geo = view(1, 4);
        for k in 0..100u64 {
            let (_, remote) = geo.fetch_from(Region::NorthCalifornia, Key(k));
            assert!(!remote);
        }
        assert_eq!(geo.remote_fetches(), 0);
    }

    #[test]
    fn view_does_not_change_store_semantics() {
        let geo = view(3, 8);
        let before = geo.store().version_of(Key(3));
        let _ = geo.fetch_from(Region::Oregon, Key(3));
        assert_eq!(geo.store().version_of(Key(3)), before);
    }
}
