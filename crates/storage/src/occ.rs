//! The verifier's concurrency-control check.
//!
//! `ccheck` (Figure 3, lines 30–35): before applying the writes of the
//! `k_max`-th transaction, the verifier fetches the current state of the
//! transaction's read-write set and compares it with the state the
//! executors observed. If the read sets match, the writes are applied and
//! `RESPONSE` is sent; otherwise (conflicting transaction with stale
//! reads, Section VI-B) the transaction is aborted.

use crate::kvstore::VersionedStore;
use sbft_types::{Key, ReadWriteSet};

/// The outcome of a concurrency-control check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OccOutcome {
    /// All reads are still current; the writes were applied.
    Applied,
    /// At least one read was stale; nothing was written.
    StaleReads(Vec<Key>),
}

impl OccOutcome {
    /// Whether the transaction's writes were applied.
    #[must_use]
    pub fn is_applied(&self) -> bool {
        matches!(self, OccOutcome::Applied)
    }
}

/// Validates observed read-write sets against the store and applies writes.
#[derive(Debug)]
pub struct ConcurrencyChecker;

impl ConcurrencyChecker {
    /// Checks whether the versions recorded in `rwset.reads` are still the
    /// current versions in `store` (without applying anything).
    #[must_use]
    pub fn reads_current(store: &VersionedStore, rwset: &ReadWriteSet) -> Vec<Key> {
        rwset
            .reads
            .iter()
            .filter(|(key, version)| store.version_of(*key) != *version)
            .map(|(key, _)| *key)
            .collect()
    }

    /// Runs the full check-then-apply step of `ccheck`: if every read is
    /// still current the writes are applied and [`OccOutcome::Applied`] is
    /// returned; otherwise the stale keys are reported and the store is
    /// left untouched.
    ///
    /// When `validate_reads` is false (non-conflicting workloads,
    /// Section IV-D note) the read-set comparison is skipped, matching the
    /// paper: "matching read-write sets is only required when the
    /// transactions are conflicting".
    pub fn check_and_apply(
        store: &VersionedStore,
        rwset: &ReadWriteSet,
        validate_reads: bool,
    ) -> OccOutcome {
        if validate_reads {
            let stale = Self::reads_current(store, rwset);
            if !stale.is_empty() {
                store.stats().record_stale_read_rejection();
                return OccOutcome::StaleReads(stale);
            }
        }
        store.apply_writes(&rwset.writes);
        OccOutcome::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{Value, Version};

    fn store_with(keys: &[(u64, u64)]) -> VersionedStore {
        let store = VersionedStore::new();
        store.load(keys.iter().map(|&(k, v)| (Key(k), Value::new(v))));
        store
    }

    #[test]
    fn fresh_reads_apply_writes() {
        let store = store_with(&[(1, 10), (2, 20)]);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_write(Key(2), Value::new(99));
        let outcome = ConcurrencyChecker::check_and_apply(&store, &rw, true);
        assert!(outcome.is_applied());
        assert_eq!(store.get(Key(2)).unwrap().value, Value::new(99));
        assert_eq!(store.version_of(Key(2)), Version(2));
    }

    #[test]
    fn stale_read_blocks_writes() {
        let store = store_with(&[(1, 10), (2, 20)]);
        // Another transaction bumps key 1 to version 2.
        store.put(Key(1), Value::new(11));
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1)); // stale now
        rw.record_write(Key(2), Value::new(99));
        let outcome = ConcurrencyChecker::check_and_apply(&store, &rw, true);
        assert_eq!(outcome, OccOutcome::StaleReads(vec![Key(1)]));
        assert_eq!(
            store.get(Key(2)).unwrap().value,
            Value::new(20),
            "no write applied"
        );
        assert_eq!(store.stats().stale_read_rejections(), 1);
    }

    #[test]
    fn validation_skipped_for_non_conflicting_mode() {
        let store = store_with(&[(1, 10), (2, 20)]);
        store.put(Key(1), Value::new(11));
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1)); // stale, but validation is off
        rw.record_write(Key(2), Value::new(99));
        let outcome = ConcurrencyChecker::check_and_apply(&store, &rw, false);
        assert!(outcome.is_applied());
        assert_eq!(store.get(Key(2)).unwrap().value, Value::new(99));
    }

    #[test]
    fn read_of_missing_key_with_version_zero_is_current() {
        let store = store_with(&[]);
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(7), Version(0));
        assert!(ConcurrencyChecker::reads_current(&store, &rw).is_empty());
    }

    #[test]
    fn multiple_stale_keys_all_reported() {
        let store = store_with(&[(1, 1), (2, 2), (3, 3)]);
        store.put(Key(1), Value::new(9));
        store.put(Key(3), Value::new(9));
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_read(Key(2), Version(1));
        rw.record_read(Key(3), Version(1));
        let stale = ConcurrencyChecker::reads_current(&store, &rw);
        assert_eq!(stale, vec![Key(1), Key(3)]);
    }

    #[test]
    fn write_only_transaction_always_applies() {
        let store = store_with(&[(5, 5)]);
        let mut rw = ReadWriteSet::new();
        rw.record_write(Key(5), Value::new(50));
        assert!(ConcurrencyChecker::check_and_apply(&store, &rw, true).is_applied());
        assert_eq!(store.get(Key(5)).unwrap().value, Value::new(50));
    }
}
