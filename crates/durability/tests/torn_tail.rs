//! Torn-tail hardening for the file-backed WAL.
//!
//! A crash can tear the last write anywhere (partial frame on disk) and a
//! failing disk can flip bits anywhere in the log. Whatever the damage,
//! [`FileWal::open`] must never panic: it replays exactly the intact frame
//! prefix, physically truncates the file at the first bad frame, and the
//! log stays appendable afterwards. [`recover`] over the replayed records
//! must likewise never panic. The fuzz below sweeps hundreds of random
//! truncation points and single-bit flips over a log holding every record
//! variant.

use sbft_crypto::CommitCertificate;
use sbft_durability::{codec, recover, FileWal, WalRecord, WriteAheadLog};
use sbft_types::{
    Batch, ClientId, Digest, Key, NodeId, Operation, SeqNum, ShardPlan, Signature, Transaction,
    TxnId, Value, ViewNumber,
};
use std::path::PathBuf;
use std::sync::Arc;

/// SplitMix64: deterministic corruption points, so a failure replays.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn committed(seq: u64) -> WalRecord {
    WalRecord::Committed {
        seq: SeqNum(seq),
        view: ViewNumber(seq / 4),
        plan: ShardPlan::Unplanned,
        batch: Batch::single(
            Transaction::new(
                TxnId::new(ClientId(seq as u32), 0),
                vec![
                    Operation::Write(Key(seq % 5), Value::new(seq * 13 + 1)),
                    Operation::ReadModifyWrite(Key((seq * 3) % 5), seq),
                ],
            )
            .with_inferred_rwset(),
        ),
        certificate: Arc::new(CommitCertificate::new(
            ViewNumber(seq / 4),
            SeqNum(seq),
            Digest::from_bytes([seq as u8; 32]),
            vec![
                (NodeId(0), Signature([seq as u8; 64])),
                (NodeId(1), Signature([seq as u8 + 1; 64])),
                (NodeId(2), Signature([seq as u8 + 2; 64])),
            ],
        )),
    }
}

/// A log exercising every record variant, in a realistic rhythm.
fn originals() -> Vec<WalRecord> {
    let mut records = Vec::new();
    for seq in 1..=8u64 {
        records.push(WalRecord::Released {
            seq: SeqNum(seq),
            view: ViewNumber(seq / 4),
            digest: Digest::from_bytes([seq as u8; 32]),
        });
        records.push(WalRecord::Vote {
            seq: SeqNum(seq),
            view: ViewNumber(seq / 4),
            digest: Digest::from_bytes([seq as u8; 32]),
        });
        records.push(committed(seq));
        if seq % 4 == 0 {
            records.push(WalRecord::ViewInstalled {
                view: ViewNumber(seq / 4),
            });
            records.push(WalRecord::SnapshotMark {
                upto: SeqNum(seq),
                view: ViewNumber(seq / 4),
            });
        }
    }
    records
}

/// Byte offset at which each frame ends in the on-disk encoding.
fn frame_ends(records: &[WalRecord]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = 0usize;
    for r in records {
        pos += 12 + codec::encode(r).len();
        ends.push(pos);
    }
    ends
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sbft-torn-{}-{}.wal", std::process::id(), name))
}

/// Writes `records` through a real `FileWal` and returns the raw bytes.
fn pristine_bytes(records: &[WalRecord]) -> Vec<u8> {
    let path = scratch("pristine");
    let _ = std::fs::remove_file(&path);
    {
        let mut wal = FileWal::open(&path).expect("open");
        for r in records {
            wal.append(r);
        }
        wal.sync();
    }
    let raw = std::fs::read(&path).expect("read");
    let _ = std::fs::remove_file(&path);
    raw
}

/// Opens `bytes` as a WAL and checks the full hardening contract: replay
/// is exactly `records[..intact]`, `recover` does not panic, the file was
/// physically truncated to the intact prefix, and the log accepts (and
/// keeps) a fresh append.
fn check_damaged(name: &str, bytes: &[u8], records: &[WalRecord], intact: usize) {
    let path = scratch(name);
    std::fs::write(&path, bytes).expect("write damaged log");
    {
        let wal = FileWal::open(&path).expect("opening a damaged log is not an error");
        let replayed = wal.replay();
        assert_eq!(
            replayed,
            records[..intact],
            "replay must be exactly the intact frame prefix"
        );
        // Recovery over whatever survived must not panic either.
        let state = recover(&replayed);
        assert!(state.entries.iter().all(|e| e.seq > state.stable_seq));
    }
    let on_disk = std::fs::metadata(&path).expect("stat").len() as usize;
    let expected = frame_ends(&records[..intact]).last().copied().unwrap_or(0);
    assert_eq!(
        on_disk, expected,
        "the bad tail must be physically truncated"
    );
    // The truncated log must remain a working log.
    let probe = WalRecord::ViewInstalled {
        view: ViewNumber(99),
    };
    {
        let mut wal = FileWal::open(&path).expect("reopen");
        wal.append(&probe);
        wal.sync();
    }
    let wal = FileWal::open(&path).expect("reopen after append");
    let mut expected_records = records[..intact].to_vec();
    expected_records.push(probe);
    assert_eq!(
        wal.replay(),
        expected_records,
        "appends after tail truncation must survive a reopen"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn random_truncations_keep_the_intact_prefix() {
    let records = originals();
    let raw = pristine_bytes(&records);
    let ends = frame_ends(&records);
    assert_eq!(*ends.last().expect("frames"), raw.len());
    let mut rng = SplitMix64(0x70e4_7a11);
    for trial in 0..150 {
        let cut = (rng.next() as usize) % (raw.len() + 1);
        let intact = ends.partition_point(|e| *e <= cut);
        check_damaged(&format!("cut{trial}"), &raw[..cut], &records, intact);
    }
}

#[test]
fn random_bit_flips_keep_the_prefix_before_the_flip() {
    let records = originals();
    let raw = pristine_bytes(&records);
    let ends = frame_ends(&records);
    let mut rng = SplitMix64(0xb17_f11b);
    for trial in 0..150 {
        let byte = (rng.next() as usize) % raw.len();
        let bit = (rng.next() % 8) as u8;
        let mut damaged = raw.clone();
        damaged[byte] ^= 1 << bit;
        // The flipped frame and everything after it is suspect; the
        // checksum must fence off exactly the frames before it.
        let intact = ends.partition_point(|e| *e <= byte);
        check_damaged(&format!("flip{trial}"), &damaged, &records, intact);
    }
}

#[test]
fn torn_tail_on_top_of_a_bit_flip_is_still_survivable() {
    let records = originals();
    let raw = pristine_bytes(&records);
    let ends = frame_ends(&records);
    let mut rng = SplitMix64(0xdead_10cc);
    for trial in 0..100 {
        let cut = (rng.next() as usize) % (raw.len() + 1);
        let mut damaged = raw[..cut].to_vec();
        let intact = if damaged.is_empty() {
            0
        } else {
            let byte = (rng.next() as usize) % damaged.len();
            damaged[byte] ^= 1 << (rng.next() % 8) as u8;
            ends.partition_point(|e| *e <= byte)
                .min(ends.partition_point(|e| *e <= cut))
        };
        check_damaged(&format!("both{trial}"), &damaged, &records, intact);
    }
}
