//! The append-only write-ahead log and its two backends.
//!
//! Records are *buffered* by [`WriteAheadLog::append`] and become durable
//! only at [`WriteAheadLog::sync`] — the fsync point of the durable-vote
//! rule (a replica syncs its `Vote` record before the `COMMIT` message
//! leaves, and its `Committed` record before acting on the commit). A
//! crash calls [`WriteAheadLog::lose_unsynced`]: the buffered tail is
//! gone, durable records survive.

use crate::codec;
use sbft_crypto::CommitCertificate;
use sbft_types::{Batch, Digest, SeqNum, ShardPlan, ViewNumber};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One durable event in a shim replica's life.
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// The primary released a batch into consensus (`PREPREPARE`
    /// broadcast). Buffered: losing it costs nothing — clients retransmit.
    Released {
        /// Sequence number the batch was proposed at.
        seq: SeqNum,
        /// View of the proposal.
        view: ViewNumber,
        /// Digest of the proposed batch.
        digest: Digest,
    },
    /// This replica sent a signed `COMMIT` vote. Synced *before* the vote
    /// leaves the node, so a restarted replica can never vote twice for
    /// different batches at one sequence number.
    Vote {
        /// Sequence number voted for.
        seq: SeqNum,
        /// View of the vote.
        view: ViewNumber,
        /// Digest of the batch voted for.
        digest: Digest,
    },
    /// A batch committed locally with its certificate. Carries the full
    /// batch so replay is self-contained (no peer needed for anything at
    /// or below the durable suffix).
    Committed {
        /// Committed sequence number.
        seq: SeqNum,
        /// View it committed in.
        view: ViewNumber,
        /// Ordering-time shard plan replicated with the batch.
        plan: ShardPlan,
        /// The committed batch.
        batch: Batch,
        /// The `2f_R + 1`-signer commit certificate.
        certificate: Arc<CommitCertificate>,
    },
    /// A view was installed (new-view or view-change completion).
    ViewInstalled {
        /// The view now in effect.
        view: ViewNumber,
    },
    /// A featherweight snapshot was cut: everything at or below `upto` is
    /// covered by a stable checkpoint and the log was truncated to it.
    SnapshotMark {
        /// The snapshot boundary (inclusive).
        upto: SeqNum,
        /// View at the time of the cut.
        view: ViewNumber,
    },
}

impl WalRecord {
    /// The sequence number this record is about, if it is per-sequence.
    #[must_use]
    pub fn seq(&self) -> Option<SeqNum> {
        match self {
            WalRecord::Released { seq, .. }
            | WalRecord::Vote { seq, .. }
            | WalRecord::Committed { seq, .. } => Some(*seq),
            WalRecord::SnapshotMark { upto, .. } => Some(*upto),
            WalRecord::ViewInstalled { .. } => None,
        }
    }

    /// Whether a snapshot at `upto` supersedes this record (it may be
    /// dropped when the log is truncated to the snapshot).
    #[must_use]
    pub fn superseded_by_snapshot(&self, upto: SeqNum) -> bool {
        match self {
            WalRecord::Released { seq, .. }
            | WalRecord::Vote { seq, .. }
            | WalRecord::Committed { seq, .. } => *seq <= upto,
            // Older snapshot marks are subsumed by the newer one.
            WalRecord::SnapshotMark { upto: old, .. } => *old < upto,
            // View records are a few bytes and latest-wins at recovery.
            WalRecord::ViewInstalled { .. } => false,
        }
    }
}

/// An append-only durable log of [`WalRecord`]s.
///
/// Implementations must keep append order within each durability class:
/// `replay` returns the durable records in the order they were appended.
pub trait WriteAheadLog: Send {
    /// Buffers `record` at the tail of the log and returns its encoded
    /// size in bytes (what the cost model charges for the write).
    fn append(&mut self, record: &WalRecord) -> u64;

    /// Makes every buffered record durable (the fsync).
    fn sync(&mut self);

    /// The durable records, in append order. Buffered (unsynced) records
    /// are *not* replayed — a crash would have lost them.
    fn replay(&self) -> Vec<WalRecord>;

    /// Drops durable records superseded by a snapshot at `upto`
    /// (inclusive) and returns the number of bytes dropped — the log
    /// retention boundary moving up to the last snapshot.
    fn truncate_below(&mut self, upto: SeqNum) -> u64;

    /// Number of durable records.
    fn durable_len(&self) -> usize;

    /// Number of buffered records that would be lost by a crash.
    fn unsynced_len(&self) -> usize;

    /// Crash semantics: the buffered tail is lost, durable records stay.
    fn lose_unsynced(&mut self);
}

/// The deterministic in-memory backend: the simulator's "disk". Durable
/// records survive a simulated crash ([`WriteAheadLog::lose_unsynced`]);
/// every append round-trips through the [`codec`] so the sim exercises
/// the same wire format the file backend writes.
#[derive(Default)]
pub struct MemWal {
    durable: Vec<(WalRecord, u64)>,
    buffered: Vec<(WalRecord, u64)>,
}

impl MemWal {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        MemWal::default()
    }

    /// Total encoded bytes held durably (tests and retention accounting).
    #[must_use]
    pub fn durable_bytes(&self) -> u64 {
        self.durable.iter().map(|(_, b)| *b).sum()
    }
}

impl WriteAheadLog for MemWal {
    fn append(&mut self, record: &WalRecord) -> u64 {
        let bytes = codec::encode(record);
        debug_assert_eq!(
            codec::decode(&bytes).as_ref(),
            Some(record),
            "WAL codec must round-trip every appended record"
        );
        let size = bytes.len() as u64;
        self.buffered.push((record.clone(), size));
        size
    }

    fn sync(&mut self) {
        self.durable.append(&mut self.buffered);
    }

    fn replay(&self) -> Vec<WalRecord> {
        self.durable.iter().map(|(r, _)| r.clone()).collect()
    }

    fn truncate_below(&mut self, upto: SeqNum) -> u64 {
        let before = self.durable_bytes();
        self.durable
            .retain(|(r, _)| !r.superseded_by_snapshot(upto));
        before - self.durable_bytes()
    }

    fn durable_len(&self) -> usize {
        self.durable.len()
    }

    fn unsynced_len(&self) -> usize {
        self.buffered.len()
    }

    fn lose_unsynced(&mut self) {
        self.buffered.clear();
    }
}

/// The buffered-file backend for the thread runtime.
///
/// Frames are `[len: u32 LE][checksum: u64 LE][payload]`; `sync` writes
/// the buffered frames and calls `sync_data` (the real fsync). Opening an
/// existing file replays its frames, stopping at the first torn or
/// corrupt frame — exactly what a crashed process would find on disk.
pub struct FileWal {
    file: File,
    path: PathBuf,
    durable: Vec<(WalRecord, u64)>,
    pending: Vec<(WalRecord, Vec<u8>)>,
}

impl FileWal {
    /// Opens (or creates) the log at `path`, replaying any intact frames
    /// already on disk. A torn or corrupt tail (a crash mid-write, a bit
    /// flip) is physically truncated at the first bad frame, so later
    /// appends land directly after the intact prefix instead of behind
    /// unreachable garbage.
    ///
    /// # Errors
    /// Returns the I/O error if the file cannot be opened or read.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (durable, intact) = parse_frames(&raw);
        if intact < raw.len() {
            file.set_len(intact as u64)?;
            file.seek(SeekFrom::End(0))?;
            file.sync_data()?;
        }
        Ok(FileWal {
            file,
            path,
            durable,
            pending: Vec::new(),
        })
    }

    /// The path this log writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&codec::checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn rewrite(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        for (record, _) in &self.durable {
            let payload = codec::encode(record);
            self.file.write_all(&Self::frame(&payload))?;
        }
        self.file.sync_data()
    }
}

/// Parses the intact frame prefix of `raw`, returning the records and the
/// byte length of that prefix (where the first torn or corrupt frame — if
/// any — begins).
fn parse_frames(raw: &[u8]) -> (Vec<(WalRecord, u64)>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while raw.len() - pos >= 12 {
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(raw[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let Some(end) = (pos + 12).checked_add(len) else {
            break;
        };
        if end > raw.len() {
            break; // torn tail write
        }
        let payload = &raw[pos + 12..end];
        if codec::checksum(payload) != sum {
            break; // corrupt frame: everything after it is suspect
        }
        let Some(record) = codec::decode(payload) else {
            break;
        };
        records.push((record, payload.len() as u64));
        pos = end;
    }
    (records, pos)
}

impl WriteAheadLog for FileWal {
    fn append(&mut self, record: &WalRecord) -> u64 {
        let payload = codec::encode(record);
        let size = payload.len() as u64;
        self.pending.push((record.clone(), payload));
        size
    }

    fn sync(&mut self) {
        for (record, payload) in self.pending.drain(..) {
            let size = payload.len() as u64;
            self.file
                .write_all(&Self::frame(&payload))
                .expect("WAL write failed");
            self.durable.push((record, size));
        }
        self.file.sync_data().expect("WAL fsync failed");
    }

    fn replay(&self) -> Vec<WalRecord> {
        self.durable.iter().map(|(r, _)| r.clone()).collect()
    }

    fn truncate_below(&mut self, upto: SeqNum) -> u64 {
        let before: u64 = self.durable.iter().map(|(_, b)| *b).sum();
        self.durable
            .retain(|(r, _)| !r.superseded_by_snapshot(upto));
        let after: u64 = self.durable.iter().map(|(_, b)| *b).sum();
        self.rewrite().expect("WAL truncation rewrite failed");
        before - after
    }

    fn durable_len(&self) -> usize {
        self.durable.len()
    }

    fn unsynced_len(&self) -> usize {
        self.pending.len()
    }

    fn lose_unsynced(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Key, NodeId, Operation, Signature, Transaction, TxnId};

    fn committed(seq: u64) -> WalRecord {
        WalRecord::Committed {
            seq: SeqNum(seq),
            view: ViewNumber(0),
            plan: ShardPlan::Unplanned,
            batch: Batch::single(Transaction::new(
                TxnId::new(ClientId(1), seq),
                vec![Operation::Read(Key(seq))],
            )),
            certificate: Arc::new(CommitCertificate::new(
                ViewNumber(0),
                SeqNum(seq),
                Digest::from_bytes([seq as u8; 32]),
                vec![(NodeId(0), Signature([1; 64]))],
            )),
        }
    }

    fn vote(seq: u64) -> WalRecord {
        WalRecord::Vote {
            seq: SeqNum(seq),
            view: ViewNumber(0),
            digest: Digest::from_bytes([seq as u8; 32]),
        }
    }

    #[test]
    fn crash_loses_the_buffered_tail_only() {
        let mut wal = MemWal::new();
        wal.append(&vote(1));
        wal.sync();
        wal.append(&vote(2));
        assert_eq!(wal.durable_len(), 1);
        assert_eq!(wal.unsynced_len(), 1);
        wal.lose_unsynced();
        assert_eq!(wal.replay(), vec![vote(1)]);
    }

    #[test]
    fn truncation_moves_the_retention_boundary_to_the_snapshot() {
        let mut wal = MemWal::new();
        for s in 1..=6 {
            wal.append(&vote(s));
            wal.append(&committed(s));
        }
        wal.append(&WalRecord::SnapshotMark {
            upto: SeqNum(4),
            view: ViewNumber(0),
        });
        wal.sync();
        let dropped = wal.truncate_below(SeqNum(4));
        assert!(dropped > 0, "truncation must reclaim bytes");
        let replayed = wal.replay();
        assert!(replayed
            .iter()
            .all(|r| r.seq().is_none_or(|s| s > SeqNum(4))
                || matches!(r, WalRecord::SnapshotMark { .. })));
        // Snapshot mark itself survives as the new floor.
        assert!(replayed
            .iter()
            .any(|r| matches!(r, WalRecord::SnapshotMark { upto, .. } if *upto == SeqNum(4))));
    }

    #[test]
    fn file_backend_round_trips_across_reopen() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sbft-wal-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = FileWal::open(&path).expect("open");
            wal.append(&vote(1));
            wal.append(&committed(1));
            wal.sync();
            wal.append(&vote(2)); // never synced: lost on crash
        }
        let wal = FileWal::open(&path).expect("reopen");
        assert_eq!(wal.replay(), vec![vote(1), committed(1)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backend_stops_at_a_torn_frame() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sbft-wal-torn-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = FileWal::open(&path).expect("open");
            wal.append(&vote(1));
            wal.append(&vote(2));
            wal.sync();
        }
        // Tear the last frame by chopping bytes off the end of the file.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..raw.len() - 5]).expect("tear");
        let wal = FileWal::open(&path).expect("reopen");
        assert_eq!(wal.replay(), vec![vote(1)], "only the intact prefix");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backend_truncates_on_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sbft-wal-trunc-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = FileWal::open(&path).expect("open");
            for s in 1..=4 {
                wal.append(&committed(s));
            }
            wal.append(&WalRecord::SnapshotMark {
                upto: SeqNum(3),
                view: ViewNumber(0),
            });
            wal.sync();
            wal.truncate_below(SeqNum(3));
        }
        let wal = FileWal::open(&path).expect("reopen");
        let seqs: Vec<_> = wal
            .replay()
            .iter()
            .filter_map(|r| match r {
                WalRecord::Committed { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![SeqNum(4)]);
        let _ = std::fs::remove_file(&path);
    }
}
