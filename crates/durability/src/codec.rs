//! Hand-rolled binary codec for [`WalRecord`]s.
//!
//! The vendored `serde` stub derives no real serialization, so the WAL
//! defines its own little-endian, length-free tag format. The format is
//! self-delimiting per record (every list is length-prefixed) and
//! versioned only by the record tags; [`decode`] returns `None` on any
//! malformed input so a torn or corrupted frame never panics a replay.

use crate::wal::WalRecord;
use sbft_crypto::CommitCertificate;
use sbft_types::{
    Batch, Digest, Key, NodeId, Operation, RwSetKeys, SeqNum, ShardId, ShardPlan, Signature,
    SimDuration, Transaction, TxnId, Value, ViewNumber,
};

const TAG_RELEASED: u8 = 1;
const TAG_VOTE: u8 = 2;
const TAG_COMMITTED: u8 = 3;
const TAG_VIEW_INSTALLED: u8 = 4;
const TAG_SNAPSHOT_MARK: u8 = 5;

/// FNV-1a over the encoded payload; the frame checksum of [`crate::FileWal`].
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one record into its wire bytes.
#[must_use]
pub fn encode(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match record {
        WalRecord::Released { seq, view, digest } => {
            out.push(TAG_RELEASED);
            put_u64(&mut out, seq.0);
            put_u64(&mut out, view.0);
            out.extend_from_slice(digest.as_bytes());
        }
        WalRecord::Vote { seq, view, digest } => {
            out.push(TAG_VOTE);
            put_u64(&mut out, seq.0);
            put_u64(&mut out, view.0);
            out.extend_from_slice(digest.as_bytes());
        }
        WalRecord::Committed {
            seq,
            view,
            plan,
            batch,
            certificate,
        } => {
            out.push(TAG_COMMITTED);
            put_u64(&mut out, seq.0);
            put_u64(&mut out, view.0);
            put_plan(&mut out, *plan);
            put_batch(&mut out, batch);
            put_certificate(&mut out, certificate);
        }
        WalRecord::ViewInstalled { view } => {
            out.push(TAG_VIEW_INSTALLED);
            put_u64(&mut out, view.0);
        }
        WalRecord::SnapshotMark { upto, view } => {
            out.push(TAG_SNAPSHOT_MARK);
            put_u64(&mut out, upto.0);
            put_u64(&mut out, view.0);
        }
    }
    out
}

/// Decodes one record, or `None` if the bytes are malformed or carry
/// trailing garbage.
#[must_use]
pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
    let mut r = Reader { bytes, pos: 0 };
    let record = match r.u8()? {
        TAG_RELEASED => WalRecord::Released {
            seq: SeqNum(r.u64()?),
            view: ViewNumber(r.u64()?),
            digest: r.digest()?,
        },
        TAG_VOTE => WalRecord::Vote {
            seq: SeqNum(r.u64()?),
            view: ViewNumber(r.u64()?),
            digest: r.digest()?,
        },
        TAG_COMMITTED => WalRecord::Committed {
            seq: SeqNum(r.u64()?),
            view: ViewNumber(r.u64()?),
            plan: r.plan()?,
            batch: r.batch()?,
            certificate: std::sync::Arc::new(r.certificate()?),
        },
        TAG_VIEW_INSTALLED => WalRecord::ViewInstalled {
            view: ViewNumber(r.u64()?),
        },
        TAG_SNAPSHOT_MARK => WalRecord::SnapshotMark {
            upto: SeqNum(r.u64()?),
            view: ViewNumber(r.u64()?),
        },
        _ => return None,
    };
    if r.pos == bytes.len() {
        Some(record)
    } else {
        None
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_plan(out: &mut Vec<u8>, plan: ShardPlan) {
    match plan {
        ShardPlan::Unplanned => out.push(0),
        ShardPlan::SingleHome(shard) => {
            out.push(1);
            put_u32(out, shard.0);
        }
        ShardPlan::CrossHome => out.push(2),
    }
}

fn put_batch(out: &mut Vec<u8>, batch: &Batch) {
    put_u32(out, batch.len() as u32);
    for txn in batch.txns() {
        put_txn(out, txn);
    }
}

fn put_txn(out: &mut Vec<u8>, txn: &Transaction) {
    put_u32(out, txn.id.client.0);
    put_u64(out, txn.id.counter);
    put_u32(out, txn.ops.len() as u32);
    for op in &txn.ops {
        match op {
            Operation::Read(k) => {
                out.push(0);
                put_u64(out, k.0);
            }
            Operation::Write(k, v) => {
                out.push(1);
                put_u64(out, k.0);
                put_u64(out, v.data);
                put_u32(out, v.logical_len);
            }
            Operation::ReadModifyWrite(k, salt) => {
                out.push(2);
                put_u64(out, k.0);
                put_u64(out, *salt);
            }
        }
    }
    match &txn.declared_rwset {
        None => out.push(0),
        Some(rwset) => {
            out.push(1);
            put_u32(out, rwset.read_keys.len() as u32);
            for k in &rwset.read_keys {
                put_u64(out, k.0);
            }
            put_u32(out, rwset.write_keys.len() as u32);
            for k in &rwset.write_keys {
                put_u64(out, k.0);
            }
        }
    }
    put_u64(out, txn.execution_cost.0);
    put_u32(out, txn.payload_len);
}

fn put_certificate(out: &mut Vec<u8>, cert: &CommitCertificate) {
    put_u64(out, cert.view.0);
    put_u64(out, cert.seq.0);
    out.extend_from_slice(cert.batch_digest.as_bytes());
    put_u32(out, cert.entries.len() as u32);
    for (node, sig) in &cert.entries {
        put_u32(out, node.0);
        out.extend_from_slice(sig.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn digest(&mut self) -> Option<Digest> {
        Some(Digest::from_bytes(self.take(32)?.try_into().ok()?))
    }

    fn signature(&mut self) -> Option<Signature> {
        Some(Signature(self.take(64)?.try_into().ok()?))
    }

    fn plan(&mut self) -> Option<ShardPlan> {
        Some(match self.u8()? {
            0 => ShardPlan::Unplanned,
            1 => ShardPlan::SingleHome(ShardId(self.u32()?)),
            2 => ShardPlan::CrossHome,
            _ => return None,
        })
    }

    fn batch(&mut self) -> Option<Batch> {
        let len = self.u32()? as usize;
        if len == 0 {
            return None;
        }
        let mut txns = Vec::with_capacity(len.min(4_096));
        for _ in 0..len {
            txns.push(self.txn()?);
        }
        Some(Batch::new(txns))
    }

    fn txn(&mut self) -> Option<Transaction> {
        let client = sbft_types::ClientId(self.u32()?);
        let counter = self.u64()?;
        let n_ops = self.u32()? as usize;
        let mut ops = Vec::with_capacity(n_ops.min(4_096));
        for _ in 0..n_ops {
            ops.push(match self.u8()? {
                0 => Operation::Read(Key(self.u64()?)),
                1 => {
                    let key = Key(self.u64()?);
                    let data = self.u64()?;
                    let logical_len = self.u32()?;
                    Operation::Write(key, Value { data, logical_len })
                }
                2 => Operation::ReadModifyWrite(Key(self.u64()?), self.u64()?),
                _ => return None,
            });
        }
        let rwset = match self.u8()? {
            0 => None,
            1 => {
                let n_reads = self.u32()? as usize;
                let mut reads = Vec::with_capacity(n_reads.min(4_096));
                for _ in 0..n_reads {
                    reads.push(Key(self.u64()?));
                }
                let n_writes = self.u32()? as usize;
                let mut writes = Vec::with_capacity(n_writes.min(4_096));
                for _ in 0..n_writes {
                    writes.push(Key(self.u64()?));
                }
                Some(RwSetKeys::new(reads, writes))
            }
            _ => return None,
        };
        let execution_cost = SimDuration(self.u64()?);
        let payload_len = self.u32()?;
        let mut txn =
            Transaction::new(TxnId::new(client, counter), ops).with_execution_cost(execution_cost);
        txn.declared_rwset = rwset;
        txn.payload_len = payload_len;
        Some(txn)
    }

    fn certificate(&mut self) -> Option<CommitCertificate> {
        let view = ViewNumber(self.u64()?);
        let seq = SeqNum(self.u64()?);
        let batch_digest = self.digest()?;
        let n = self.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(4_096));
        for _ in 0..n {
            let node = NodeId(self.u32()?);
            let sig = self.signature()?;
            entries.push((node, sig));
        }
        Some(CommitCertificate::new(view, seq, batch_digest, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::ClientId;
    use std::sync::Arc;

    fn txn(counter: u64) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(3), counter),
            vec![
                Operation::Read(Key(counter)),
                Operation::Write(
                    Key(counter + 1),
                    Value {
                        data: 42,
                        logical_len: 1_000,
                    },
                ),
                Operation::ReadModifyWrite(Key(counter + 2), 7),
            ],
        )
        .with_inferred_rwset()
        .with_execution_cost(SimDuration::from_micros(50))
    }

    fn cert(seq: u64) -> CommitCertificate {
        CommitCertificate::new(
            ViewNumber(1),
            SeqNum(seq),
            Digest::from_bytes([9; 32]),
            vec![
                (NodeId(0), Signature([1; 64])),
                (NodeId(2), Signature([2; 64])),
                (NodeId(3), Signature([3; 64])),
            ],
        )
    }

    fn all_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Released {
                seq: SeqNum(1),
                view: ViewNumber(0),
                digest: Digest::from_bytes([1; 32]),
            },
            WalRecord::Vote {
                seq: SeqNum(1),
                view: ViewNumber(0),
                digest: Digest::from_bytes([1; 32]),
            },
            WalRecord::Committed {
                seq: SeqNum(1),
                view: ViewNumber(0),
                plan: ShardPlan::SingleHome(ShardId(2)),
                batch: Batch::new(vec![txn(0), txn(1)]),
                certificate: Arc::new(cert(1)),
            },
            WalRecord::ViewInstalled {
                view: ViewNumber(4),
            },
            WalRecord::SnapshotMark {
                upto: SeqNum(8),
                view: ViewNumber(4),
            },
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        for record in all_records() {
            let bytes = encode(&record);
            let decoded = decode(&bytes).expect("decodes");
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn committed_record_preserves_batch_and_certificate_exactly() {
        let record = WalRecord::Committed {
            seq: SeqNum(7),
            view: ViewNumber(2),
            plan: ShardPlan::CrossHome,
            batch: Batch::new((0..100).map(txn).collect()),
            certificate: Arc::new(cert(7)),
        };
        let decoded = decode(&encode(&record)).expect("decodes");
        let WalRecord::Committed {
            batch, certificate, ..
        } = &decoded
        else {
            panic!("wrong kind");
        };
        assert_eq!(batch.len(), 100);
        assert_eq!(certificate.entries.len(), 3);
        assert_eq!(decoded, record);
    }

    #[test]
    fn truncated_or_corrupt_bytes_decode_to_none() {
        let bytes = encode(&all_records()[2]);
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_none(), "trailing garbage rejected");
        let mut bad_tag = bytes;
        bad_tag[0] = 99;
        assert!(decode(&bad_tag).is_none());
    }

    #[test]
    fn checksum_is_stable_and_input_sensitive() {
        let a = checksum(b"hello");
        assert_eq!(a, checksum(b"hello"));
        assert_ne!(a, checksum(b"hellp"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }
}
