//! The `recover()` fold: durable WAL records back into replica state.
//!
//! Recovery is a pure function of the replayed records — no I/O, no
//! peers. The consensus layer installs the [`RecoveredState`] and then
//! state-transfers the suffix above [`RecoveredState::max_seq`] from
//! peers; everything at or below it is reconstructed locally.

use crate::wal::WalRecord;
use sbft_crypto::CommitCertificate;
use sbft_types::{Batch, SeqNum, ShardPlan, ViewNumber};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed batch reconstructed from the durable log (or received
/// via state transfer — the shapes are identical because certificates
/// self-certify).
#[derive(Clone, PartialEq, Debug)]
pub struct RecoveredEntry {
    /// Committed sequence number.
    pub seq: SeqNum,
    /// View the batch committed in.
    pub view: ViewNumber,
    /// The committed batch.
    pub batch: Batch,
    /// Ordering-time shard plan replicated with the batch.
    pub plan: ShardPlan,
    /// The commit certificate proving the batch committed.
    pub certificate: Arc<CommitCertificate>,
}

/// Everything a restarted replica resumes from.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// The last snapshot boundary (stable checkpoint floor). Zero when
    /// no snapshot was ever cut.
    pub stable_seq: SeqNum,
    /// The highest view the replica had durably installed or committed
    /// in — it rejoins at this view, never an older one.
    pub view: ViewNumber,
    /// Committed entries above the snapshot floor, in sequence order.
    pub entries: Vec<RecoveredEntry>,
    /// Total durable records replayed (telemetry: `replay_batches`
    /// counts the committed subset, this counts everything).
    pub replayed_records: u64,
}

impl RecoveredState {
    /// The highest sequence number this replica knows committed — the
    /// floor for the peer state-transfer request.
    #[must_use]
    pub fn max_seq(&self) -> SeqNum {
        self.entries
            .last()
            .map_or(self.stable_seq, |entry| entry.seq.max(self.stable_seq))
    }
}

/// Folds replayed WAL records into the state a replica restarts from.
///
/// View is the maximum over every durable view mention (installed views,
/// committed entries, snapshot marks); the stable floor is the highest
/// snapshot mark; committed entries are keyed by sequence with the
/// latest record winning (a re-commit after view change supersedes the
/// older one), and entries at or below the floor are dropped — the
/// snapshot already covers them.
#[must_use]
pub fn recover(records: &[WalRecord]) -> RecoveredState {
    let mut view = ViewNumber(0);
    let mut stable = SeqNum(0);
    let mut committed: BTreeMap<SeqNum, RecoveredEntry> = BTreeMap::new();
    for record in records {
        match record {
            WalRecord::Released { view: v, .. } | WalRecord::Vote { view: v, .. } => {
                view = view.max(*v);
            }
            WalRecord::Committed {
                seq,
                view: v,
                plan,
                batch,
                certificate,
            } => {
                view = view.max(*v);
                committed.insert(
                    *seq,
                    RecoveredEntry {
                        seq: *seq,
                        view: *v,
                        batch: batch.clone(),
                        plan: *plan,
                        certificate: Arc::clone(certificate),
                    },
                );
            }
            WalRecord::ViewInstalled { view: v } => view = view.max(*v),
            WalRecord::SnapshotMark { upto, view: v } => {
                view = view.max(*v);
                stable = stable.max(*upto);
            }
        }
    }
    committed.retain(|seq, _| *seq > stable);
    RecoveredState {
        stable_seq: stable,
        view,
        entries: committed.into_values().collect(),
        replayed_records: records.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbft_types::{ClientId, Digest, Key, NodeId, Operation, Signature, Transaction, TxnId};

    fn committed(seq: u64, view: u64) -> WalRecord {
        WalRecord::Committed {
            seq: SeqNum(seq),
            view: ViewNumber(view),
            plan: ShardPlan::Unplanned,
            batch: Batch::single(Transaction::new(
                TxnId::new(ClientId(9), seq),
                vec![Operation::Write(
                    Key(seq),
                    sbft_types::Value {
                        data: view,
                        logical_len: 8,
                    },
                )],
            )),
            certificate: Arc::new(CommitCertificate::new(
                ViewNumber(view),
                SeqNum(seq),
                Digest::from_bytes([seq as u8; 32]),
                vec![(NodeId(0), Signature([2; 64]))],
            )),
        }
    }

    #[test]
    fn empty_log_recovers_to_the_initial_state() {
        let state = recover(&[]);
        assert_eq!(state.stable_seq, SeqNum(0));
        assert_eq!(state.view, ViewNumber(0));
        assert!(state.entries.is_empty());
        assert_eq!(state.max_seq(), SeqNum(0));
    }

    #[test]
    fn entries_below_the_snapshot_floor_are_dropped() {
        let records = vec![
            committed(1, 0),
            committed(2, 0),
            WalRecord::SnapshotMark {
                upto: SeqNum(2),
                view: ViewNumber(0),
            },
            committed(3, 0),
        ];
        let state = recover(&records);
        assert_eq!(state.stable_seq, SeqNum(2));
        let seqs: Vec<_> = state.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![SeqNum(3)]);
        assert_eq!(state.max_seq(), SeqNum(3));
        assert_eq!(state.replayed_records, 4);
    }

    #[test]
    fn view_is_the_maximum_durable_view_from_any_record() {
        let records = vec![
            committed(1, 0),
            WalRecord::ViewInstalled {
                view: ViewNumber(3),
            },
            WalRecord::Vote {
                seq: SeqNum(2),
                view: ViewNumber(2),
                digest: Digest::ZERO,
            },
        ];
        assert_eq!(recover(&records).view, ViewNumber(3));
    }

    #[test]
    fn recommit_in_a_later_view_supersedes_the_older_record() {
        let records = vec![committed(5, 0), committed(5, 2)];
        let state = recover(&records);
        assert_eq!(state.entries.len(), 1);
        assert_eq!(state.entries[0].view, ViewNumber(2));
    }

    #[test]
    fn max_seq_falls_back_to_the_snapshot_floor() {
        let records = vec![
            committed(1, 0),
            WalRecord::SnapshotMark {
                upto: SeqNum(4),
                view: ViewNumber(0),
            },
        ];
        let state = recover(&records);
        assert!(state.entries.is_empty());
        assert_eq!(state.max_seq(), SeqNum(4));
    }
}
