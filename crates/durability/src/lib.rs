//! Durable consensus state for shim replicas: an append-only write-ahead
//! log, featherweight snapshots, and the `recover()` fold that rebuilds a
//! crashed replica from its durable records.
//!
//! The paper's replicas are purely in-memory; this crate adds the
//! persistence layer that makes crash-restart a first-class fault. Three
//! pieces:
//!
//! * [`WalRecord`] / [`WriteAheadLog`] — the append-only log of released
//!   batches, commit votes, commit certificates and view changes. Records
//!   are buffered until [`WriteAheadLog::sync`] (the fsync point); a crash
//!   loses the buffered tail only ([`WriteAheadLog::lose_unsynced`]).
//! * Snapshots — a [`WalRecord::SnapshotMark`] cut at the featherweight
//!   checkpoint boundary. The snapshot carries no application state
//!   (shim nodes hold certificates, not data), so marking the boundary
//!   and truncating the log below it *is* the snapshot.
//! * [`recover`] — folds the durable records back into the committed
//!   entries and view a restarted replica resumes from; the missing
//!   suffix is then state-transferred from peers by the consensus layer.
//!
//! Two backends: [`MemWal`] is the deterministic in-memory "disk" the
//! simulator crashes and restarts; [`FileWal`] is the buffered-file
//! backend for the thread runtime, with a checksummed frame format that
//! survives torn tail writes. The vendored `serde` stub derives no real
//! serialization, so the wire format is the hand-rolled [`codec`].

#![deny(missing_docs)]

pub mod codec;
pub mod recover;
pub mod wal;

pub use recover::{recover, RecoveredEntry, RecoveredState};
pub use wal::{FileWal, MemWal, WalRecord, WriteAheadLog};
