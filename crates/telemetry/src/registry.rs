//! Named metrics registry: counters, gauges and latency histograms.
//!
//! Components register their metrics under dotted names
//! (`verifier.committed_txns`, `shim.3.batcher.released_full`) and keep a
//! cloned handle; the registry and the component share the same atomic, so
//! reads through the registry always see the live value. See
//! `OBSERVABILITY.md` for the naming conventions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::Histogram;

/// A monotonically increasing counter. `Clone` shares the underlying
/// atomic, so a component and the [`Registry`] observe the same value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge sharing the same handle semantics as
/// [`Counter`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotone counter.
    Counter(Counter),
    /// A last-value gauge.
    Gauge(Gauge),
    /// A latency histogram (microseconds).
    Histogram(Histogram),
}

/// The process-wide (or run-wide) metric namespace. Registration is
/// idempotent: registering an existing name returns a handle to the same
/// metric, so re-wiring a component never forks the count.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or fetches) the counter called `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Registers (or fetches) the gauge called `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Registers (or fetches) the histogram called `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Registers an existing counter handle under `name` — for
    /// components whose counters live behind shared state (`Arc`
    /// internals) where the handle cannot be swapped after construction.
    pub fn bind_counter(&self, name: &str, counter: &Counter) {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// Registers an existing histogram handle under `name` (same sharing
    /// semantics as [`Self::bind_counter`]).
    pub fn bind_histogram(&self, name: &str, histogram: &Histogram) {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// Current value of the counter called `name` (0 when absent — a
    /// component that never registered simply contributes nothing).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.lock().expect("registry poisoned").get(name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Sum of every counter whose dotted name ends in `.suffix` — the
    /// cross-component rollup (`sum_counters("pinned_spawns")` adds the
    /// per-shim invoker counters).
    #[must_use]
    pub fn sum_counters(&self, suffix: &str) -> u64 {
        let dotted = format!(".{suffix}");
        self.metrics
            .lock()
            .expect("registry poisoned")
            .iter()
            .filter(|(name, _)| name.ends_with(&dotted) || name.as_str() == suffix)
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// A point-in-time copy of every metric, sorted by name (the
    /// `BTreeMap` order) — the exporter's input.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders the registry as a deterministic `name value` table
    /// (histograms print count/mean/p50/p99).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => out.push_str(&format!(
                    "{name} count={} mean_us={:.1} p50_us={} p99_us={}\n",
                    h.count(),
                    h.mean_us(),
                    h.percentile_us(0.5),
                    h.percentile_us(0.99),
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let registry = Registry::new();
        let a = registry.counter("x.hits");
        let b = registry.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter_value("x.hits"), 3);
    }

    #[test]
    fn suffix_sum_rolls_up_across_components() {
        let registry = Registry::new();
        registry.counter("shim.0.invoker.pinned_spawns").add(3);
        registry.counter("shim.1.invoker.pinned_spawns").add(4);
        registry
            .counter("shim.1.invoker.placement_fallbacks")
            .add(9);
        assert_eq!(registry.sum_counters("pinned_spawns"), 7);
        assert_eq!(registry.sum_counters("placement_fallbacks"), 9);
        assert_eq!(registry.sum_counters("absent"), 0);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let registry = Registry::new();
        registry.counter("b.second").add(2);
        registry.counter("a.first").add(1);
        registry.gauge("c.third").set(3);
        let text = registry.render();
        let first = text.find("a.first 1").expect("a.first missing");
        let second = text.find("b.second 2").expect("b.second missing");
        let third = text.find("c.third 3").expect("c.third missing");
        assert!(first < second && second < third);
    }

    #[test]
    fn histograms_register_and_render() {
        let registry = Registry::new();
        let h = registry.histogram("stage.apply_us");
        h.record(100);
        h.record(200);
        assert!(registry.render().contains("stage.apply_us count=2"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }
}
