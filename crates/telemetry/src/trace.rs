//! Batch lifecycle tracing.
//!
//! Every batch is identified by a [`TraceId`] (its sequence number — stable
//! across replicas and runs) and moves through the fixed [`Stage`] pipeline.
//! The interpreters (sim harness, thread runtime) emit one [`SpanEvent`] per
//! stage edge through a [`Tracer`], which holds an optional shared
//! [`TraceSink`]; with tracing off the hot path pays exactly one branch on
//! `Option::is_some` and no allocation.

use std::fmt;
use std::sync::{Arc, Mutex};

use sbft_types::SimTime;

/// Identifies one batch across its whole lifecycle. Batches are already
/// uniquely named by their consensus sequence number, which is identical
/// across replicas and across identical runs — exactly the determinism the
/// trace round-trip test needs — so the trace id is that number.
pub type TraceId = u64;

/// A pipeline edge in a batch's lifecycle, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// First client request of the batch finished shim admission CPU work.
    ShimIngest,
    /// First request of the batch was enqueued on its batcher lane.
    LaneEnqueue,
    /// The batcher released the batch (size or timeout trigger).
    BatchRelease,
    /// The ordering message carrying the batch (PREPREPARE / CFT-ACCEPT)
    /// was processed by a replica.
    PrePrepare,
    /// The commit quorum completed and the batch was committed.
    CommitQuorum,
    /// The executor spawn for the batch was issued.
    ExecuteSpawn,
    /// The first VERIFY for the batch reached the trusted verifier.
    VerifyIngest,
    /// The verifier began applying the validated batch.
    ApplyStart,
    /// One shard slice of the apply began (cross-shard batches only).
    ShardSliceStart,
    /// One shard slice of the apply finished.
    ShardSliceEnd,
    /// The apply finished on every shard.
    ApplyEnd,
    /// The client response for the batch was processed.
    Respond,
    /// A crashed replica finished recovery (snapshot + WAL replay + peer
    /// state transfer). Not part of the per-batch pipeline: the trace id
    /// is the recovering node, and the span covers the whole replay.
    Recover,
}

impl Stage {
    /// Stable lowercase name used in exports and stage tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::ShimIngest => "shim_ingest",
            Stage::LaneEnqueue => "lane_enqueue",
            Stage::BatchRelease => "batch_release",
            Stage::PrePrepare => "preprepare",
            Stage::CommitQuorum => "commit_quorum",
            Stage::ExecuteSpawn => "execute_spawn",
            Stage::VerifyIngest => "verify_ingest",
            Stage::ApplyStart => "apply_start",
            Stage::ShardSliceStart => "shard_slice_start",
            Stage::ShardSliceEnd => "shard_slice_end",
            Stage::ApplyEnd => "apply_end",
            Stage::Respond => "respond",
            Stage::Recover => "recover",
        }
    }

    /// The linear pipeline every committed batch walks, in order. Shard
    /// slices are excluded: they repeat per shard between
    /// [`Stage::ApplyStart`] and [`Stage::ApplyEnd`].
    pub const PIPELINE: [Stage; 10] = [
        Stage::ShimIngest,
        Stage::LaneEnqueue,
        Stage::BatchRelease,
        Stage::PrePrepare,
        Stage::CommitQuorum,
        Stage::ExecuteSpawn,
        Stage::VerifyIngest,
        Stage::ApplyStart,
        Stage::ApplyEnd,
        Stage::Respond,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One timestamped stage crossing of one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The batch this event belongs to.
    pub trace: TraceId,
    /// Which pipeline edge was crossed.
    pub stage: Stage,
    /// When (sim time in the simulator, wall-clock µs in the runtime).
    pub at: SimTime,
    /// The shard a `ShardSlice*` event ran on; `None` for pipeline edges.
    pub shard: Option<u32>,
}

/// Where span events go. Implementations must be cheap: the sim emits one
/// call per batch per stage on the hot path.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: SpanEvent);
}

/// Discards every event — the default sink, used to prove the tracing-off
/// overhead is a single branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: SpanEvent) {}
}

/// Buffers events in memory for export or assertions.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<SpanEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything recorded so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: SpanEvent) {
        self.events.lock().expect("sink poisoned").push(event);
    }
}

/// The emitting side handed to interpreters. Cloning shares the sink.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything (one-branch hot path).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether events are being recorded. Callers may use this to skip
    /// building event arguments entirely.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one stage crossing.
    #[inline]
    pub fn emit(&self, trace: TraceId, stage: Stage, at: SimTime) {
        if let Some(sink) = &self.sink {
            sink.record(SpanEvent {
                trace,
                stage,
                at,
                shard: None,
            });
        }
    }

    /// Emits one shard-slice event carrying the shard id.
    #[inline]
    pub fn emit_shard(&self, trace: TraceId, stage: Stage, at: SimTime, shard: u32) {
        if let Some(sink) = &self.sink {
            sink.record(SpanEvent {
                trace,
                stage,
                at,
                shard: Some(shard),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops_events() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.emit(1, Stage::ShimIngest, SimTime::ZERO); // must not panic
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        assert!(tracer.enabled());
        tracer.emit(7, Stage::BatchRelease, SimTime::from_micros(10));
        tracer.emit_shard(7, Stage::ShardSliceStart, SimTime::from_micros(20), 2);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::BatchRelease);
        assert_eq!(events[1].shard, Some(2));
    }

    #[test]
    fn pipeline_is_strictly_ordered() {
        for pair in Stage::PIPELINE.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
