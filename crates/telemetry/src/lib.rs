//! Telemetry for the serverless-BFT pipeline: batch lifecycle tracing, a
//! named metrics registry, log-scale latency histograms and deterministic
//! exporters.
//!
//! Three layers, usable independently:
//!
//! * [`Tracer`] / [`TraceSink`] — per-batch span events at every pipeline
//!   edge (shim ingest through client response), emitted by the
//!   interpreters (sim harness and thread runtime), not the pure role
//!   state machines, so role logic stays deterministic and
//!   instrumentation-free. The default [`NoopSink`]-less tracer costs one
//!   branch per emit.
//! * [`Registry`] — shared-handle [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s under dotted names; components register at build time
//!   and keep their handle, the run harness reads final values through the
//!   registry.
//! * [`chrome_trace`] / [`stage_breakdown`] — a Chrome `trace_event` JSON
//!   dump (loadable in `chrome://tracing` / Perfetto) and the per-stage
//!   latency table whose rows telescope to the end-to-end commit latency.
//!
//! See `OBSERVABILITY.md` at the repo root for the span taxonomy and
//! naming conventions.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod export;
mod histogram;
mod registry;
mod trace;

pub use export::{chrome_trace, render_stage_table, stage_breakdown, StageRow, INTERVALS};
pub use histogram::Histogram;
pub use registry::{Counter, Gauge, Metric, Registry};
pub use trace::{MemorySink, NoopSink, SpanEvent, Stage, TraceId, TraceSink, Tracer};
