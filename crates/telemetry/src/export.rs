//! Exporters: Chrome `trace_event` JSONL and the per-stage latency table.
//!
//! Both exporters are deterministic functions of the recorded events:
//! traces are keyed by batch sequence number and every map is a `BTreeMap`,
//! so two identical runs export byte-identical output — the property the
//! round-trip test pins.

use std::collections::BTreeMap;

use sbft_types::SimTime;

use crate::{Histogram, SpanEvent, Stage, TraceId};

/// The named stage intervals of the batch pipeline, each delimited by two
/// markers. Consecutive intervals share their boundary marker, so per-batch
/// durations telescope: their sum equals the end-to-end
/// `shim_ingest → respond` latency exactly.
pub const INTERVALS: [(&str, Stage, Stage); 7] = [
    ("batch_wait", Stage::ShimIngest, Stage::BatchRelease),
    ("ordering", Stage::BatchRelease, Stage::CommitQuorum),
    ("spawn", Stage::CommitQuorum, Stage::ExecuteSpawn),
    ("execute", Stage::ExecuteSpawn, Stage::VerifyIngest),
    ("verify", Stage::VerifyIngest, Stage::ApplyStart),
    ("apply", Stage::ApplyStart, Stage::ApplyEnd),
    ("respond", Stage::ApplyEnd, Stage::Respond),
];

/// One row of the per-stage latency table.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Interval name (`batch_wait`, `ordering`, …, or `e2e`).
    pub stage: &'static str,
    /// Batches contributing to this row.
    pub count: u64,
    /// Mean duration in microseconds (exact).
    pub avg_us: f64,
    /// Median duration in microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration in microseconds.
    pub p99_us: u64,
}

/// Earliest timestamp of every stage per trace. Duplicate markers (e.g.
/// the PREPREPARE processed by each replica) collapse to the first, which
/// arrival order makes deterministic in the sim.
pub fn marks(events: &[SpanEvent]) -> BTreeMap<TraceId, BTreeMap<Stage, SimTime>> {
    let mut marks: BTreeMap<TraceId, BTreeMap<Stage, SimTime>> = BTreeMap::new();
    for event in events {
        if event.shard.is_some() {
            continue;
        }
        marks
            .entry(event.trace)
            .or_default()
            .entry(event.stage)
            .or_insert(event.at);
    }
    marks
}

/// Builds the per-stage latency table from recorded events. Only traces
/// holding both boundary markers contribute to an interval; the final
/// `e2e` row spans `shim_ingest → respond` and, by telescoping, equals the
/// sum of the other rows for every complete trace.
#[must_use]
pub fn stage_breakdown(events: &[SpanEvent]) -> Vec<StageRow> {
    let marks = marks(events);
    let mut rows = Vec::with_capacity(INTERVALS.len() + 1);
    for (name, from, to) in INTERVALS {
        let histogram = Histogram::new();
        for trace_marks in marks.values() {
            if let (Some(start), Some(end)) = (trace_marks.get(&from), trace_marks.get(&to)) {
                histogram.record(end.since(*start).as_micros());
            }
        }
        rows.push(row(name, &histogram));
    }
    let e2e = Histogram::new();
    for trace_marks in marks.values() {
        if let (Some(start), Some(end)) = (
            trace_marks.get(&Stage::ShimIngest),
            trace_marks.get(&Stage::Respond),
        ) {
            e2e.record(end.since(*start).as_micros());
        }
    }
    rows.push(row("e2e", &e2e));
    rows
}

fn row(name: &'static str, histogram: &Histogram) -> StageRow {
    StageRow {
        stage: name,
        count: histogram.count(),
        avg_us: histogram.mean_us(),
        p50_us: histogram.percentile_us(0.5),
        p99_us: histogram.percentile_us(0.99),
    }
}

/// Renders the stage table as fixed-width text.
#[must_use]
pub fn render_stage_table(rows: &[StageRow]) -> String {
    let mut out = String::from("stage        count    avg_us    p50_us    p99_us\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6} {:>9.1} {:>9} {:>9}\n",
            r.stage, r.count, r.avg_us, r.p50_us, r.p99_us
        ));
    }
    out
}

fn push_event(
    out: &mut Vec<String>,
    name: &str,
    trace: TraceId,
    start: SimTime,
    end: SimTime,
    shard: Option<u32>,
) {
    let args = match shard {
        Some(s) => format!(",\"args\":{{\"shard\":{s}}}"),
        None => String::new(),
    };
    out.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{trace}{args}}}",
        start.as_micros(),
        end.since(start).as_micros(),
    ));
}

/// Exports events as a Chrome `trace_event` JSON array with one event per
/// line — valid JSON for `chrome://tracing` / Perfetto, and line-oriented
/// so the determinism test can diff it byte-for-byte. Each batch becomes
/// one `tid` lane carrying its stage intervals as complete (`"ph":"X"`)
/// events; shard slices appear as `shard<id>` events nested under `apply`,
/// so the PR 5 chained staircase is visible as stacked slices.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let marks = marks(events);
    let mut lines = Vec::new();
    for (trace, trace_marks) in &marks {
        for (name, from, to) in INTERVALS {
            if let (Some(start), Some(end)) = (trace_marks.get(&from), trace_marks.get(&to)) {
                push_event(&mut lines, name, *trace, *start, *end, None);
            }
        }
    }
    // Shard slices, paired start→end per (trace, shard) in arrival order.
    let mut open: BTreeMap<(TraceId, u32), SimTime> = BTreeMap::new();
    let mut slices: Vec<(TraceId, u32, SimTime, SimTime)> = Vec::new();
    for event in events {
        let Some(shard) = event.shard else { continue };
        match event.stage {
            Stage::ShardSliceStart => {
                open.insert((event.trace, shard), event.at);
            }
            Stage::ShardSliceEnd => {
                if let Some(start) = open.remove(&(event.trace, shard)) {
                    slices.push((event.trace, shard, start, event.at));
                }
            }
            _ => {}
        }
    }
    slices.sort_by_key(|(trace, shard, start, _)| (*trace, start.as_micros(), *shard));
    for (trace, shard, start, end) in slices {
        push_event(
            &mut lines,
            &format!("shard{shard}"),
            trace,
            start,
            end,
            Some(shard),
        );
    }
    format!("[\n{}\n]\n", lines.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(trace: TraceId, stage: Stage, us: u64) -> SpanEvent {
        SpanEvent {
            trace,
            stage,
            at: SimTime::from_micros(us),
            shard: None,
        }
    }

    fn slice(trace: TraceId, stage: Stage, us: u64, shard: u32) -> SpanEvent {
        SpanEvent {
            trace,
            stage,
            at: SimTime::from_micros(us),
            shard: Some(shard),
        }
    }

    fn full_trace(trace: TraceId, base: u64) -> Vec<SpanEvent> {
        let steps = [
            Stage::ShimIngest,
            Stage::LaneEnqueue,
            Stage::BatchRelease,
            Stage::PrePrepare,
            Stage::CommitQuorum,
            Stage::ExecuteSpawn,
            Stage::VerifyIngest,
            Stage::ApplyStart,
            Stage::ApplyEnd,
            Stage::Respond,
        ];
        steps
            .iter()
            .enumerate()
            .map(|(i, s)| mark(trace, *s, base + 10 * i as u64))
            .collect()
    }

    #[test]
    fn stage_sums_telescope_to_e2e() {
        let events = full_trace(1, 100);
        let rows = stage_breakdown(&events);
        let e2e = rows.last().expect("e2e row");
        assert_eq!(e2e.stage, "e2e");
        assert_eq!(e2e.count, 1);
        let stage_sum: f64 = rows[..rows.len() - 1].iter().map(|r| r.avg_us).sum();
        assert!((stage_sum - e2e.avg_us).abs() < 1e-9);
        assert!((e2e.avg_us - 90.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_traces_are_skipped_per_interval() {
        let mut events = full_trace(1, 0);
        // Trace 2 only reached commit — contributes to early intervals only.
        events.push(mark(2, Stage::ShimIngest, 5));
        events.push(mark(2, Stage::BatchRelease, 25));
        let rows = stage_breakdown(&events);
        let wait = &rows[0];
        assert_eq!(wait.stage, "batch_wait");
        assert_eq!(wait.count, 2);
        assert_eq!(rows.last().expect("e2e").count, 1);
    }

    #[test]
    fn duplicate_markers_collapse_to_first() {
        let mut events = full_trace(1, 0);
        events.push(mark(1, Stage::PrePrepare, 500)); // a later replica's copy
        let rows = stage_breakdown(&events);
        assert_eq!(rows.last().expect("e2e").count, 1);
        assert!((rows.last().expect("e2e").avg_us - 90.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_trace_is_valid_and_deterministic() {
        let mut events = full_trace(3, 100);
        events.extend(full_trace(1, 50));
        events.push(slice(1, Stage::ShardSliceStart, 120, 0));
        events.push(slice(1, Stage::ShardSliceEnd, 125, 0));
        events.push(slice(1, Stage::ShardSliceStart, 125, 1));
        events.push(slice(1, Stage::ShardSliceEnd, 131, 1));
        let json = chrome_trace(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains("\"name\":\"ordering\""));
        assert!(json.contains("\"name\":\"shard1\""));
        assert!(json.contains("\"args\":{\"shard\":1}"));
        // Trace 1 sorts before trace 3 regardless of arrival order.
        let t1 = json.find("\"tid\":1").expect("tid 1");
        let t3 = json.find("\"tid\":3").expect("tid 3");
        assert!(t1 < t3);
        // Same events, same bytes.
        assert_eq!(json, chrome_trace(&events));
        // Every line between the brackets is one JSON object.
        for line in json.lines().filter(|l| l.starts_with('{')) {
            let body = line.trim_end_matches(',');
            assert!(body.starts_with('{') && body.ends_with('}'), "line: {line}");
        }
    }

    #[test]
    fn shard_slices_form_a_staircase() {
        let events = vec![
            slice(9, Stage::ShardSliceStart, 10, 2),
            slice(9, Stage::ShardSliceEnd, 20, 2),
            slice(9, Stage::ShardSliceStart, 20, 5),
            slice(9, Stage::ShardSliceEnd, 35, 5),
        ];
        let json = chrome_trace(&events);
        let first = json.find("shard2").expect("first slice");
        let second = json.find("shard5").expect("second slice");
        assert!(first < second, "slices sorted by start time");
    }
}
