//! Fixed-bucket log-scale latency histogram.
//!
//! Values are microseconds. The bucket layout is linear below 64 µs (one
//! bucket per microsecond, exact) and log-scale above: every power-of-two
//! octave is split into 64 sub-buckets, so the relative quantisation error
//! of any recorded value is at most 1/64 ≈ 1.6 %. `record` is
//! allocation-free (two atomic adds plus one indexed add) and percentile
//! queries walk the bucket array once — no clone, no sort — which is what
//! lets the simulator keep a histogram per pipeline stage without the
//! clone-and-sort cost the old `LatencyStats` paid on every query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-buckets per power-of-two octave. 64 keeps the worst-case relative
/// error of a percentile at 1/64 while the whole table (3 776 buckets)
/// stays ~30 KiB.
const SUB_BUCKETS: u64 = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 6;
/// Octaves 6..=63 each get 64 sub-buckets; values below 2^6 are exact.
const NUM_BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Maps a microsecond value to its bucket index.
#[inline]
fn bucket_index(value_us: u64) -> usize {
    if value_us < SUB_BUCKETS {
        return value_us as usize;
    }
    let octave = 63 - value_us.leading_zeros(); // floor(log2), >= SUB_BITS
    let sub = (value_us >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
    (((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of the bucket — the representative value reported
/// for any percentile that lands in it. Always ≥ every value the bucket
/// holds, so percentiles never under-report.
#[inline]
fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let octave = (index / SUB_BUCKETS) as u32 + SUB_BITS - 1;
    let sub = index % SUB_BUCKETS;
    let lower = (1u64 << octave) + (sub << (octave - SUB_BITS));
    lower + ((1u64 << (octave - SUB_BITS)) - 1)
}

#[derive(Debug)]
struct Inner {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

/// A shared-handle log-scale histogram of microsecond latencies.
///
/// `Clone` shares the underlying buckets (prometheus-style): a component
/// keeps one handle and the [`crate::Registry`] another, and both observe
/// the same distribution.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(Inner {
                counts: counts.into_boxed_slice(),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
                max_us: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value (microseconds). Allocation-free.
    pub fn record(&self, value_us: u64) {
        let inner = &*self.inner;
        inner.counts[bucket_index(value_us)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_us.fetch_add(value_us, Ordering::Relaxed);
        inner.max_us.fetch_max(value_us, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all recorded values in microseconds.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.inner.sum_us.load(Ordering::Relaxed)
    }

    /// Largest recorded value in microseconds (0 when empty).
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.inner.max_us.load(Ordering::Relaxed)
    }

    /// Exact mean in microseconds (0 when empty). Uses the true sum, not
    /// bucket representatives, so the mean carries no quantisation error.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us() as f64 / n as f64
    }

    /// The given percentile (0.0–1.0) in microseconds, resolved to the
    /// upper bound of the bucket holding the target sample — at most 1/64
    /// above the true order statistic, never below it. O(buckets), no
    /// allocation.
    #[must_use]
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, bucket) in self.inner.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(idx).min(self.max_us());
            }
        }
        self.max_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // indices are monotone in the value.
        let mut prev_idx = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1_000, 50_000, 1 << 40] {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index must be monotone at {v}");
            assert!(bucket_upper_bound(idx) >= v, "upper bound covers {v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        assert_eq!(h.percentile_us(0.0), 0);
        assert_eq!(h.percentile_us(1.0), 63);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn percentile_error_is_bounded() {
        // 1..=100 ms in µs — the same fixture the sim's LatencyStats test
        // uses; quantisation error must stay within its tolerances.
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(ms * 1_000);
        }
        let p50 = h.percentile_us(0.5) as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 1.0 / 64.0 + 1e-9);
        let p99 = h.percentile_us(0.99);
        assert!((99_000..=100_000).contains(&p99));
        // Exact mean: (1+..+100)/100 = 50.5 ms.
        assert!((h.mean_us() - 50_500.0).abs() < 1e-9);
        // Max is never exceeded even by the top bucket's upper bound.
        assert_eq!(h.percentile_us(1.0), 100_000);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn clones_share_the_distribution() {
        let a = Histogram::new();
        let b = a.clone();
        a.record(10);
        b.record(20);
        assert_eq!(a.count(), 2);
        assert_eq!(b.sum_us(), 30);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_us(1.0), u64::MAX);
    }
}
