//! Integration tests spanning the whole workspace: client → shim consensus
//! → serverless executors → verifier → storage → client, on the
//! discrete-event simulator.

use serverless_bft::core::system::ShimProtocol;
use serverless_bft::core::SystemBuilder;
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{ConflictHandling, SimDuration, SystemConfig};

fn small_config() -> SystemConfig {
    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.workload.num_records = 5_000;
    cfg.workload.batch_size = 10;
    cfg
}

fn params(clients: usize) -> SimParams {
    SimParams {
        duration: SimDuration::from_millis(300),
        warmup: SimDuration::from_millis(100),
        num_clients: clients,
        ..SimParams::default()
    }
}

#[test]
fn serverlessbft_end_to_end_commits_and_applies_writes() {
    let system = SystemBuilder::new(small_config()).clients(60).build();
    let storage = std::sync::Arc::clone(&system.storage);
    let before_writes = storage.stats().writes();
    let metrics = SimHarness::new(system, params(60)).run();
    assert!(
        metrics.committed_txns > 100,
        "committed {}",
        metrics.committed_txns
    );
    assert_eq!(metrics.aborted_txns, 0);
    // Committed read-modify-write transactions must have reached storage.
    assert!(storage.stats().writes() > before_writes);
    // Latency is at least the executor round trip (~a few milliseconds).
    assert!(metrics.avg_latency_secs() > 0.002);
}

#[test]
fn all_three_shim_protocols_complete_the_flow() {
    for protocol in [ShimProtocol::Pbft, ShimProtocol::Cft, ShimProtocol::NoShim] {
        let system = SystemBuilder::new(small_config())
            .protocol(protocol)
            .clients(40)
            .build();
        let metrics = SimHarness::new(system, params(40)).run();
        assert!(
            metrics.committed_txns > 0,
            "{protocol:?} committed no transactions"
        );
    }
}

#[test]
fn baseline_ordering_matches_figure_7() {
    // NoShim ≥ ServerlessCFT ≥ ServerlessBFT in throughput (Figure 7).
    let run = |protocol| {
        let system = SystemBuilder::new(small_config())
            .protocol(protocol)
            .clients(80)
            .build();
        SimHarness::new(system, params(80)).run().throughput_tps()
    };
    let bft = run(ShimProtocol::Pbft);
    let cft = run(ShimProtocol::Cft);
    let noshim = run(ShimProtocol::NoShim);
    assert!(noshim >= cft * 0.95, "NoShim {noshim} vs CFT {cft}");
    assert!(cft >= bft * 0.95, "CFT {cft} vs BFT {bft}");
}

#[test]
fn larger_shims_have_lower_throughput() {
    // The effect of Figure 6(i) is a CPU effect: a 32-node shim pays
    // O(n²) PREPARE/COMMIT processing per batch. Single-core shim nodes
    // under enough closed-loop load put both deployments in the
    // CPU-bound regime where that quadratic cost is visible; with the
    // default 16 cores and this client count neither shim saturates and
    // both runs are purely latency-bound (identical throughput).
    let run = |n_r: usize| {
        let mut cfg = small_config();
        cfg.fault = serverless_bft::types::FaultParams::for_shim_size(n_r);
        cfg.shim_cores = 1;
        cfg.workload.num_clients = 300;
        let system = SystemBuilder::new(cfg).clients(300).build();
        SimHarness::new(system, params(300)).run().throughput_tps()
    };
    let small = run(4);
    let large = run(32);
    assert!(
        small > large,
        "a 4-node shim ({small}) must outperform a 32-node shim ({large})"
    );
}

#[test]
fn batching_improves_throughput_over_tiny_batches() {
    // Batching amortises per-batch consensus, spawn and VERIFY costs.
    // Those costs only matter once the shim and verifier are near
    // saturation, so run with few cores and enough clients to get there.
    let run = |batch: usize| {
        let mut cfg = small_config();
        cfg.workload.batch_size = batch;
        cfg.workload.num_clients = 600;
        cfg.shim_cores = 2;
        cfg.verifier_cores = 1;
        let system = SystemBuilder::new(cfg).clients(600).build();
        SimHarness::new(system, params(600)).run().throughput_tps()
    };
    let tiny = run(1);
    let batched = run(50);
    assert!(
        batched > tiny * 1.5,
        "batch=50 ({batched}) must clearly beat batch=1 ({tiny})"
    );
}

#[test]
fn conflicting_transactions_abort_only_in_unknown_rwset_mode() {
    let run = |handling| {
        let mut cfg = small_config();
        cfg.conflict_handling = handling;
        cfg.workload.conflict_fraction = 0.4;
        let system = SystemBuilder::new(cfg).clients(60).build();
        SimHarness::new(system, params(60)).run()
    };
    let unknown = run(ConflictHandling::UnknownRwSets);
    assert!(
        unknown.aborted_txns > 0,
        "conflicts must abort with unknown rw-sets"
    );
    let planned = run(ConflictHandling::KnownRwSets);
    assert!(
        planned.abort_rate() < unknown.abort_rate(),
        "the planner must reduce the abort rate ({} vs {})",
        planned.abort_rate(),
        unknown.abort_rate()
    );
}

#[test]
fn simulation_is_deterministic_across_runs() {
    // Identical seeds must yield identical RunMetrics end to end — this is
    // the workload-level regression gate for the zero-copy refactor: batch
    // hand-off by refcount, memoized digests and truncated verifier maps
    // may not change a single committed, aborted or delivered count.
    let run = || {
        let system = SystemBuilder::new(small_config()).clients(50).build();
        SimHarness::new(system, params(50)).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed_txns, b.committed_txns);
    assert_eq!(a.aborted_txns, b.aborted_txns);
    assert_eq!(a.divergent_aborts, b.divergent_aborts);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.bytes_delivered, b.bytes_delivered);
    assert_eq!(a.executors_spawned, b.executors_spawned);
    assert_eq!(a.latency.count(), b.latency.count());
    assert_eq!(a.avg_latency_secs(), b.avg_latency_secs());
}

#[test]
fn long_runs_with_tight_checkpoint_interval_stay_correct() {
    // A small featherweight checkpoint interval makes the verifier
    // truncate its retry maps many times during the run (the bound itself
    // is asserted by the verifier unit tests); the full system must keep
    // committing with zero aborts throughout.
    let mut cfg = small_config();
    cfg.timers.checkpoint_interval = 10;
    let system = SystemBuilder::new(cfg).clients(80).build();
    let metrics = SimHarness::new(
        system,
        SimParams {
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(50),
            num_clients: 80,
            ..SimParams::default()
        },
    )
    .run();
    assert!(
        metrics.committed_txns > 500,
        "committed {}",
        metrics.committed_txns
    );
    assert_eq!(metrics.aborted_txns, 0);
}

#[test]
fn ordering_planner_cuts_cross_shard_coordination_end_to_end() {
    // KnownRwSets over 8 shards activates the ordering-time shard
    // planner at the primary. Compared with the same deployment routed
    // only at apply time, the full closed-loop system must (i) keep
    // committing, (ii) tag batches the verifier's re-derivation always
    // accepts, and (iii) clearly cut the cross-shard-fallback rate.
    let run = |lanes: bool| {
        let mut cfg = small_config();
        cfg.conflict_handling = ConflictHandling::KnownRwSets;
        cfg.sharding = serverless_bft::types::ShardingConfig::with_shards(8);
        cfg.sharding.ordering_lanes = lanes;
        let system = SystemBuilder::new(cfg).clients(60).build();
        SimHarness::new(system, params(60)).run()
    };
    let planned = run(true);
    let baseline = run(false);
    assert!(planned.committed_txns > 100, "{}", planned.committed_txns);
    assert!(baseline.committed_txns > 100, "{}", baseline.committed_txns);
    assert!(planned.planned_batches > 0, "lanes must earn the fast path");
    assert_eq!(
        planned.plan_mismatches, 0,
        "an honest primary's tags always survive re-derivation"
    );
    assert_eq!(baseline.planned_batches, 0, "the baseline never tags");
    assert!(
        planned.cross_shard_fallback_rate() < baseline.cross_shard_fallback_rate(),
        "lanes must cut the fallback rate ({} vs {})",
        planned.cross_shard_fallback_rate(),
        baseline.cross_shard_fallback_rate(),
    );
}

#[test]
fn geo_partitioned_deployment_pins_placement_end_to_end() {
    // Geo-partitioned storage over 3 regions with plan-aware placement:
    // the full closed-loop system must keep committing, pin every
    // single-home batch's executors to its shard's home region (zero
    // cross-region storage fetches), and never trip the trust-but-verify
    // re-derivation. The round-robin baseline over the same partitioned
    // store keeps paying remote fetches — and a mean commit latency at
    // least as high.
    let run = |pinned: bool| {
        let mut cfg = small_config();
        cfg.conflict_handling = ConflictHandling::KnownRwSets;
        cfg.regions = serverless_bft::types::RegionSet::first_n(3);
        cfg.sharding = serverless_bft::types::ShardingConfig::with_shards(8)
            .with_geo_partitioning()
            .with_pinned_placement(pinned);
        let system = SystemBuilder::new(cfg).clients(60).build();
        SimHarness::new(system, params(60)).run()
    };
    let pinned = run(true);
    let rr = run(false);
    assert!(pinned.committed_txns > 100, "{}", pinned.committed_txns);
    assert!(rr.committed_txns > 100, "{}", rr.committed_txns);
    assert!(pinned.pinned_spawns > 0, "single-home batches must pin");
    assert_eq!(pinned.placement_fallbacks, 0, "nothing to fall back from");
    assert_eq!(pinned.plan_mismatches, 0, "honest tags always verify");
    assert_eq!(rr.pinned_spawns, 0, "the baseline never pins");
    assert_eq!(
        pinned.remote_fetch_rate(),
        0.0,
        "pinned single-home executors fetch only from their own region"
    );
    assert!(rr.remote_fetch_rate() > 0.3, "{}", rr.remote_fetch_rate());
    assert!(
        pinned.avg_latency_secs() <= rr.avg_latency_secs(),
        "pinned mean commit latency must not lose ({} vs {})",
        pinned.avg_latency_secs(),
        rr.avg_latency_secs()
    );
}

#[test]
fn geo_partitioned_runs_are_deterministic() {
    // The geo pipeline (partitioned fetch charging + pinned placement)
    // must stay bit-deterministic for a fixed seed, like its unplanned
    // and planner counterparts above.
    let run = || {
        let mut cfg = small_config();
        cfg.conflict_handling = ConflictHandling::KnownRwSets;
        cfg.regions = serverless_bft::types::RegionSet::first_n(3);
        cfg.sharding =
            serverless_bft::types::ShardingConfig::with_shards(8).with_geo_partitioning();
        let system = SystemBuilder::new(cfg).clients(50).build();
        SimHarness::new(system, params(50)).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed_txns, b.committed_txns);
    assert_eq!(a.pinned_spawns, b.pinned_spawns);
    assert_eq!(a.placement_fallbacks, b.placement_fallbacks);
    assert_eq!(a.local_storage_fetches, b.local_storage_fetches);
    assert_eq!(a.remote_storage_fetches, b.remote_storage_fetches);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.bytes_delivered, b.bytes_delivered);
}

#[test]
fn planner_runs_are_deterministic() {
    // The laned pipeline must stay bit-deterministic for a fixed seed —
    // the regression gate for the ordering-time planner, mirroring the
    // unplanned determinism test above.
    let run = || {
        let mut cfg = small_config();
        cfg.conflict_handling = ConflictHandling::KnownRwSets;
        cfg.sharding = serverless_bft::types::ShardingConfig::with_shards(8);
        let system = SystemBuilder::new(cfg).clients(50).build();
        SimHarness::new(system, params(50)).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed_txns, b.committed_txns);
    assert_eq!(a.aborted_txns, b.aborted_txns);
    assert_eq!(a.planned_batches, b.planned_batches);
    assert_eq!(a.single_home_batches, b.single_home_batches);
    assert_eq!(a.plan_mismatches, b.plan_mismatches);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.bytes_delivered, b.bytes_delivered);
}
