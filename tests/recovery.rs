//! Crash-restart recovery equivalence.
//!
//! A replica that crashes, restarts, replays its durable log from the
//! last snapshot and fetches the suffix it missed from peers must end
//! with exactly the committed log of a replica that never crashed — and
//! therefore exactly the same KV state and client responses, since both
//! are deterministic functions of the committed batch sequence. The
//! proptest sweeps the crash point, the length of the dark window, the
//! snapshot interval and the shard-lane configuration.

use proptest::prelude::*;
use serverless_bft::consensus::{ConsensusMessage, OrderingProtocol, PbftReplica};
use serverless_bft::core::{Action, ClientRequest, Destination, ProtocolMessage, ShimNode};
use serverless_bft::crypto::CryptoProvider;
use serverless_bft::types::{
    Batch, ClientId, ComponentId, ConflictHandling, DurabilityConfig, Key, NodeId, Operation,
    SeqNum, ShardingConfig, SimDuration, SimTime, SystemConfig, Transaction, TxnId, Value,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The backup replica whose crash-restart the suite watches.
const OBSERVED: usize = 3;

/// Four PBFT-backed shim nodes driven synchronously, with the batches
/// and commits observed at node [`OBSERVED`] recorded off the wire.
struct Cluster {
    nodes: Vec<ShimNode>,
    provider: Arc<CryptoProvider>,
    /// Batch content per sequence as delivered to the observed node
    /// (`PREPREPARE` live, `STATERESPONSE` entries after recovery).
    batches: BTreeMap<SeqNum, Batch>,
    /// Commit order observed at the watched node.
    committed: Vec<SeqNum>,
    /// Virtual submission clock (advances per batch so the batcher's
    /// lane timeouts stay meaningful).
    clock: SimTime,
}

fn config(shards: usize, snapshot_interval: u64) -> SystemConfig {
    let mut config = SystemConfig::with_shim_size(4);
    config.workload.batch_size = 2;
    config.durability = DurabilityConfig::enabled().with_snapshot_interval(snapshot_interval);
    if shards > 1 {
        config.sharding = ShardingConfig::with_shards(shards);
        config.conflict_handling = ConflictHandling::KnownRwSets;
    }
    config
}

impl Cluster {
    fn new(shards: usize, snapshot_interval: u64) -> Self {
        let config = config(shards, snapshot_interval);
        let provider = CryptoProvider::new(21);
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(PbftReplica::new(
                    NodeId(i),
                    config.fault,
                    provider.handle(ComponentId::Node(NodeId(i))),
                    config.timers.node_timeout,
                    config.timers.checkpoint_interval,
                ));
                ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                )
            })
            .collect();
        Cluster {
            nodes,
            provider,
            batches: BTreeMap::new(),
            committed: Vec::new(),
            clock: SimTime::ZERO,
        }
    }

    /// A deterministic signed request: a write and a read-modify-write
    /// over a small key space, with the read-write set declared so the
    /// shard-lane configurations have something to route.
    fn request(&self, i: u64) -> ClientRequest {
        let client = ClientId(i as u32);
        let txn = Transaction::new(
            TxnId::new(client, 0),
            vec![
                Operation::Write(Key(i % 7), Value::new(i * 11 + 1)),
                Operation::ReadModifyWrite(Key((i * 3) % 7), i + 5),
            ],
        )
        .with_inferred_rwset();
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: self
                .provider
                .handle(ComponentId::Client(client))
                .sign(&digest),
            txn,
        }
    }

    /// Routes consensus messages to quiescence, skipping nodes in
    /// `down`, recording the observed node's deliveries and commits.
    fn drive(&mut self, origin: usize, actions: Vec<Action>, down: &[usize]) {
        let n = self.nodes.len();
        let mut queue: VecDeque<(usize, usize, ConsensusMessage)> = VecDeque::new();
        self.absorb(origin, actions, &mut queue, n);
        while let Some((from, to, msg)) = queue.pop_front() {
            if down.contains(&to) {
                continue;
            }
            if to == OBSERVED {
                self.record(&msg);
            }
            let acts = self.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            self.absorb(to, acts, &mut queue, n);
        }
    }

    /// Enqueues the consensus sends out of `actions` and records the
    /// observed node's commit stream.
    fn absorb(
        &mut self,
        origin: usize,
        actions: Vec<Action>,
        queue: &mut VecDeque<(usize, usize, ConsensusMessage)>,
        n: usize,
    ) {
        for a in actions {
            match &a {
                Action::Send(env) => match (&env.to, &env.msg) {
                    (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                        for to in 0..n {
                            if to != origin {
                                queue.push_back((origin, to, msg.clone()));
                            }
                        }
                    }
                    (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                        queue.push_back((origin, to.0 as usize, msg.clone()));
                    }
                    _ => {}
                },
                Action::BatchCommitted { seq, .. } if origin == OBSERVED => {
                    self.committed.push(*seq);
                }
                _ => {}
            }
        }
    }

    /// Captures batch content delivered to the observed node, keyed by
    /// sequence: live proposals and state-transferred entries alike.
    fn record(&mut self, msg: &ConsensusMessage) {
        match msg {
            ConsensusMessage::PrePrepare(pp) => {
                self.batches.insert(pp.seq, pp.batch.clone());
            }
            ConsensusMessage::StateResponse(sr) => {
                for e in &sr.entries {
                    self.batches.insert(e.seq, e.batch.clone());
                }
            }
            _ => {}
        }
    }

    /// Submits one two-transaction batch to the primary and drives it to
    /// quiescence; a trailing poll drains lanes the pair straddled.
    fn submit_batch(&mut self, batch: u64, down: &[usize]) {
        self.clock += SimDuration::from_millis(100);
        let now = self.clock;
        let r0 = self.request(batch * 2);
        let a0 = self.nodes[0].on_client_request(&r0, now);
        self.drive(0, a0, down);
        let r1 = self.request(batch * 2 + 1);
        let a1 = self.nodes[0].on_client_request(&r1, now);
        self.drive(0, a1, down);
        let polled = self.nodes[0].poll_batcher(now + SimDuration::from_millis(10));
        self.drive(0, polled, down);
    }

    /// The run's observable outcome at the watched node: its commit
    /// order, the KV state derived by folding the committed operations
    /// in that order, and the client responses in response order.
    fn outcome(&self) -> (Vec<SeqNum>, BTreeMap<u64, u64>, Vec<TxnId>) {
        let mut kv: BTreeMap<u64, u64> = BTreeMap::new();
        let mut responses = Vec::new();
        for seq in &self.committed {
            let batch = self
                .batches
                .get(seq)
                .expect("observed node committed a batch it was never shown");
            for txn in batch.txns() {
                for op in &txn.ops {
                    match op {
                        Operation::Read(_) => {}
                        Operation::Write(k, v) => {
                            kv.insert(k.0, v.data);
                        }
                        Operation::ReadModifyWrite(k, s) => {
                            let slot = kv.entry(k.0).or_insert(0);
                            *slot = slot.wrapping_mul(31).wrapping_add(*s);
                        }
                    }
                }
                responses.push(txn.id);
            }
        }
        (self.committed.clone(), kv, responses)
    }
}

/// One crash-restart scenario: `crash_after` batches commit everywhere,
/// the observed backup goes dark for `dark` batches, recovers (WAL
/// replay + state transfer), then `tail` more batches commit.
fn crashed_run(
    shards: usize,
    snapshot_interval: u64,
    crash_after: u64,
    dark: u64,
    tail: u64,
) -> Cluster {
    let mut cluster = Cluster::new(shards, snapshot_interval);
    let mut batch = 0;
    for _ in 0..crash_after {
        cluster.submit_batch(batch, &[]);
        batch += 1;
    }
    cluster.nodes[OBSERVED].crash();
    for _ in 0..dark {
        cluster.submit_batch(batch, &[OBSERVED]);
        batch += 1;
    }
    let restart = cluster.nodes[OBSERVED].crash_restart();
    cluster.drive(OBSERVED, restart, &[]);
    for _ in 0..tail {
        cluster.submit_batch(batch, &[]);
        batch += 1;
    }
    cluster
}

/// The same workload with no crash anywhere.
fn baseline_run(shards: usize, snapshot_interval: u64, total: u64) -> Cluster {
    let mut cluster = Cluster::new(shards, snapshot_interval);
    for batch in 0..total {
        cluster.submit_batch(batch, &[]);
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash + snapshot replay + peer state transfer is outcome-invisible:
    /// the recovered replica's commit order, derived KV state and client
    /// responses are byte-identical to the never-crashed run's, across
    /// random crash points, dark windows, snapshot intervals and shard
    /// configurations.
    #[test]
    fn recovered_replica_matches_the_never_crashed_run(
        crash_after in 0u64..4,
        dark in 0u64..3,
        tail in 1u64..3,
        // 1..5 plus "effectively never" (1000) for the snapshot rhythm.
        snapshot_interval in (0u64..6).prop_map(|i| if i == 0 { 1_000 } else { i }),
        shards in (0u8..2).prop_map(|i| if i == 0 { 1usize } else { 4 }),
    ) {
        let total = crash_after + dark + tail;
        let crashed = crashed_run(shards, snapshot_interval, crash_after, dark, tail);
        let baseline = baseline_run(shards, snapshot_interval, total);
        let (c_seqs, c_kv, c_resps) = crashed.outcome();
        let (b_seqs, b_kv, b_resps) = baseline.outcome();
        prop_assert_eq!(c_seqs, b_seqs, "commit order diverged after recovery");
        prop_assert_eq!(c_kv, b_kv, "derived KV state diverged after recovery");
        prop_assert_eq!(c_resps, b_resps, "client responses diverged after recovery");
        // The recovered node holds byte-identical batch content too.
        prop_assert_eq!(crashed.batches, baseline.batches);
    }
}

#[test]
fn recovery_splits_between_wal_replay_and_state_transfer() {
    // Two batches commit everywhere, two more while the backup is dark:
    // restart replays exactly the first two from the local log and
    // state-transfers exactly the two it missed.
    let cluster = crashed_run(1, 1_000, 2, 2, 1);
    let node = &cluster.nodes[OBSERVED];
    assert_eq!(node.replay_batches(), 2);
    assert_eq!(node.state_transfers(), 2);
    assert_eq!(node.batches_committed(), 5);
}

#[test]
fn snapshots_bound_what_recovery_replays() {
    // With a snapshot every batch, the pre-crash log holds only the
    // latest mark: replay re-seats at most one batch and the commit
    // stream still matches the baseline (covered by the proptest; the
    // counter shape is pinned here).
    let cluster = crashed_run(1, 1, 3, 0, 1);
    let node = &cluster.nodes[OBSERVED];
    assert!(
        node.replay_batches() <= 1,
        "snapshot truncation must bound replay, got {}",
        node.replay_batches()
    );
    assert!(node.snapshot_bytes() > 0, "truncation reclaims bytes");
}
