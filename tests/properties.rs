//! Property-based tests over core invariants, using proptest.

use proptest::prelude::*;
use serverless_bft::consensus::messages::{batch_digest, compute_batch_digest};
use serverless_bft::consensus::Batcher;
use serverless_bft::core::planner::{BatchFootprint, BestEffortPlanner};
use serverless_bft::core::verifier::{Verifier, VerifierConfig};
use serverless_bft::core::ClientRequest;
use serverless_bft::crypto::certificate::commit_digest;
use serverless_bft::crypto::{
    AggregateSignature, CommitCertificate, CryptoProvider, KeyStore, SimSigner,
};
use serverless_bft::serverless::{
    ExecuteRequest, Executor, ExecutorBehavior, Invoker, VerifyMessage,
};
use serverless_bft::sharding::{ShardRouter, ShardScheduler, ShardedCommitter};
use serverless_bft::storage::{ConcurrencyChecker, StorageReader, VersionedStore, YcsbTable};
use serverless_bft::types::{
    Batch, ClientId, ComponentId, ConflictHandling, Digest, ExecutorId, FaultParams, Key, NodeId,
    Operation, ReadWriteSet, Region, RegionPartition, RegionSet, RwSetKeys, SeqNum, ShardPlan,
    ShardingConfig, Signature, SimDuration, SimTime, Transaction, TxnId, TxnResult, Value, Version,
    ViewNumber,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Builds a verifier over a fresh 256-record store for the planner
/// equivalence suite.
fn equivalence_verifier(
    provider: &Arc<CryptoProvider>,
    shards: usize,
    attach_pool: bool,
) -> (Arc<VersionedStore>, Verifier) {
    let store = YcsbTable::populate(256).store().clone();
    let mut verifier = Verifier::new(
        provider.handle(ComponentId::Verifier),
        Arc::clone(&store),
        VerifierConfig {
            params: FaultParams::for_shim_size(4),
            conflict_handling: ConflictHandling::KnownRwSets,
            abort_timeout: SimDuration::from_millis(100),
            cert_quorum: 3,
            spawned_per_batch: 3,
            sharding: ShardingConfig::with_shards(shards),
            checkpoint_interval: 0,
        },
    );
    if attach_pool {
        verifier.attach_apply_pool(4);
    }
    (store, verifier)
}

/// A well-formed VERIFY message from `executor` carrying `results` and a
/// (possibly lying) ordering-time plan tag.
fn equivalence_verify(
    provider: &Arc<CryptoProvider>,
    executor: u64,
    seq: u64,
    results: Vec<TxnResult>,
    plan: ShardPlan,
) -> VerifyMessage {
    let batch_digest = Digest::from_bytes([seq as u8; 32]);
    let cd = commit_digest(ViewNumber(0), SeqNum(seq), &batch_digest);
    let entries = (0..3u32)
        .map(|n| {
            let kp = provider
                .key_store()
                .keypair_for(ComponentId::Node(NodeId(n)));
            (NodeId(n), SimSigner::sign(&kp, &cd))
        })
        .collect();
    let certificate = Arc::new(CommitCertificate::new(
        ViewNumber(0),
        SeqNum(seq),
        batch_digest,
        entries,
    ));
    let result_digest = VerifyMessage::digest_of_results(SeqNum(seq), &results);
    let handle = provider.handle(ComponentId::Executor(ExecutorId(executor)));
    let batch = Batch::single(Transaction::new(
        results[0].txn,
        vec![Operation::Read(Key(0))],
    ));
    VerifyMessage {
        executor: ExecutorId(executor),
        view: ViewNumber(0),
        seq: SeqNum(seq),
        batch_id: batch.id(),
        batch_digest,
        results: results.into(),
        result_digest,
        certificate,
        plan,
        signature: handle.sign(&result_digest),
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Operation>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..50).prop_map(|k| Operation::Read(Key(k))),
            (0u64..50, any::<u64>()).prop_map(|(k, v)| Operation::Write(Key(k), Value::new(v))),
            (0u64..50, any::<u64>()).prop_map(|(k, s)| Operation::ReadModifyWrite(Key(k), s)),
        ],
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batch digest is deterministic and collision-free for distinct
    /// operation lists (within the sampled space).
    #[test]
    fn batch_digest_deterministic(ops_a in arb_ops(), ops_b in arb_ops()) {
        let batch_a = Batch::single(Transaction::new(TxnId::new(ClientId(0), 0), ops_a.clone()));
        let batch_b = Batch::single(Transaction::new(TxnId::new(ClientId(0), 0), ops_b.clone()));
        prop_assert_eq!(batch_digest(&batch_a), batch_digest(&batch_a));
        if ops_a != ops_b {
            prop_assert_ne!(batch_digest(&batch_a), batch_digest(&batch_b));
        }
    }

    /// The Arc-batch refactor is semantics-preserving: however a batch is
    /// built (fresh vector, shared storage, clone chains), its identifier,
    /// transaction order and digest are identical — and clones are refcount
    /// bumps of the same storage, never transaction copies.
    #[test]
    fn arc_batch_refactor_is_semantics_preserving(
        op_lists in prop::collection::vec(arb_ops(), 1..20),
    ) {
        let txns: Vec<Transaction> = op_lists
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                Transaction::new(TxnId::new(ClientId((i % 5) as u32), i as u64), ops.clone())
            })
            .collect();
        let fresh = Batch::new(txns.clone());
        let shared = Batch::from_shared(txns.clone().into());
        let cloned = fresh.clone().clone();
        // Same contents, ids and digests regardless of construction route.
        prop_assert_eq!(&fresh, &shared);
        prop_assert_eq!(fresh.id(), shared.id());
        prop_assert_eq!(fresh.txn_ids(), shared.txn_ids());
        prop_assert_eq!(batch_digest(&fresh), batch_digest(&shared));
        prop_assert_eq!(batch_digest(&fresh), compute_batch_digest(&fresh));
        // Clones share storage and carry the memoized digest.
        prop_assert!(cloned.shares_txns(&fresh));
        prop_assert!(!fresh.shares_txns(&shared));
        let after = fresh.clone();
        prop_assert_eq!(after.cached_digest(), Some(batch_digest(&fresh)));
        // The transactions themselves are byte-for-byte the submitted ones.
        prop_assert_eq!(fresh.txns(), &txns[..]);
    }

    /// Cached signing digests equal freshly computed ones for arbitrary
    /// transactions, and survive cloning (the memoization regression test).
    #[test]
    fn cached_signing_digest_equals_fresh(ops in arb_ops(), client in 0u32..8, counter in 0u64..1000) {
        let txn = Transaction::new(TxnId::new(ClientId(client), counter), ops);
        prop_assert_eq!(txn.cached_signing_digest(), None);
        let memoized = ClientRequest::signing_digest(&txn);
        prop_assert_eq!(memoized, ClientRequest::compute_signing_digest(&txn));
        prop_assert_eq!(txn.cached_signing_digest(), Some(memoized));
        let clone = txn.clone();
        prop_assert_eq!(clone.cached_signing_digest(), Some(memoized));
        prop_assert_eq!(ClientRequest::signing_digest(&clone), memoized);
    }

    /// Conflict detection between declared read-write sets is symmetric.
    #[test]
    fn conflict_detection_is_symmetric(
        reads_a in prop::collection::btree_set(0u64..30, 0..5),
        writes_a in prop::collection::btree_set(0u64..30, 0..5),
        reads_b in prop::collection::btree_set(0u64..30, 0..5),
        writes_b in prop::collection::btree_set(0u64..30, 0..5),
    ) {
        let a = RwSetKeys::new(reads_a.into_iter().map(Key), writes_a.into_iter().map(Key));
        let b = RwSetKeys::new(reads_b.into_iter().map(Key), writes_b.into_iter().map(Key));
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    /// Certificates signed by a quorum of honest nodes always verify, and
    /// verification is bound to (view, seq, digest).
    #[test]
    fn certificates_verify_iff_untampered(view in 0u64..5, seq in 1u64..100, flip in any::<bool>()) {
        let store = KeyStore::new(7);
        let digest = serverless_bft::crypto::digest_u64s("prop", &[seq]);
        let cd = commit_digest(ViewNumber(view), SeqNum(seq), &digest);
        let entries: Vec<_> = (0..3u32)
            .map(|n| {
                let kp = store.keypair_for(ComponentId::Node(NodeId(n)));
                (NodeId(n), SimSigner::sign(&kp, &cd))
            })
            .collect();
        let mut cert = CommitCertificate::new(ViewNumber(view), SeqNum(seq), digest, entries);
        prop_assert!(cert.verify(&store, 3, 4).is_ok());
        if flip {
            cert.seq = SeqNum(seq + 1);
            prop_assert!(cert.verify(&store, 3, 4).is_err());
        }
    }

    /// The verifier's concurrency check never applies writes over stale
    /// reads, and always applies them when the reads are current.
    #[test]
    fn occ_applies_iff_reads_current(bump in any::<bool>(), value in any::<u64>()) {
        let store = VersionedStore::new();
        store.load([(Key(1), Value::new(0)), (Key(2), Value::new(0))]);
        if bump {
            store.put(Key(1), Value::new(99));
        }
        let mut rw = ReadWriteSet::new();
        rw.record_read(Key(1), Version(1));
        rw.record_write(Key(2), Value::new(value));
        let outcome = ConcurrencyChecker::check_and_apply(&store, &rw, true);
        prop_assert_eq!(outcome.is_applied(), !bump);
        let stored = store.get(Key(2)).unwrap().value;
        if bump {
            prop_assert_eq!(stored, Value::new(0));
        } else {
            prop_assert_eq!(stored, Value::new(value));
        }
    }

    /// The conflict-avoidance planner never has two conflicting batches in
    /// flight at the same time, regardless of the enqueue/complete order.
    #[test]
    fn planner_never_runs_conflicting_batches_concurrently(
        footprints in prop::collection::vec(
            (prop::collection::btree_set(0u64..10, 0..3), prop::collection::btree_set(0u64..10, 0..3)),
            1..8,
        )
    ) {
        let mut planner = BestEffortPlanner::new();
        let mut in_flight: Vec<(SeqNum, BatchFootprint)> = Vec::new();
        let fps: Vec<BatchFootprint> = footprints
            .iter()
            .map(|(r, w)| BatchFootprint {
                reads: r.iter().copied().map(Key).collect(),
                writes: w.iter().copied().map(Key).collect(),
            })
            .collect();
        let mut dispatched = BTreeSet::new();
        for (i, fp) in fps.iter().enumerate() {
            let seq = SeqNum(i as u64 + 1);
            let released = planner.enqueue(seq, fp.clone());
            for r in released {
                let rfp = fps[(r.0 - 1) as usize].clone();
                for (_, existing) in &in_flight {
                    prop_assert!(!existing.conflicts_with(&rfp), "conflicting batches in flight");
                }
                in_flight.push((r, rfp));
                dispatched.insert(r);
            }
            // Complete the oldest in-flight batch every other step.
            if i % 2 == 1 && !in_flight.is_empty() {
                let (done, _) = in_flight.remove(0);
                let released = planner.complete(done);
                for r in released {
                    let rfp = fps[(r.0 - 1) as usize].clone();
                    for (_, existing) in &in_flight {
                        prop_assert!(!existing.conflicts_with(&rfp));
                    }
                    in_flight.push((r, rfp));
                    dispatched.insert(r);
                }
            }
        }
        // Draining completions must eventually dispatch every batch.
        let mut guard = 0;
        while !in_flight.is_empty() && guard < 100 {
            guard += 1;
            let (done, _) = in_flight.remove(0);
            for r in planner.complete(done) {
                let rfp = fps[(r.0 - 1) as usize].clone();
                in_flight.push((r, rfp));
                dispatched.insert(r);
            }
        }
        prop_assert_eq!(dispatched.len(), fps.len());
    }

    /// Sharded execution of a conflict-free batch set is equivalent to
    /// single-shard execution: same per-transaction outcomes, same final
    /// store contents, regardless of shard count — through the verifier's
    /// synchronous committer path.
    #[test]
    fn sharded_commit_equivalent_to_single_shard_for_conflict_free_batches(
        txns in prop::collection::vec((1usize..4, any::<u64>()), 1..40),
        shards in 2usize..16,
    ) {
        // Transaction i owns the disjoint key range [4i, 4i + ops): no
        // two transactions conflict, so execution order cannot matter.
        let stride = 4u64;
        let run = |num_shards: usize| {
            let store = Arc::new(VersionedStore::new());
            store.load((0..txns.len() as u64 * stride).map(|k| (Key(k), Value::new(0))));
            let committer =
                ShardedCommitter::new(Arc::clone(&store), &ShardingConfig::with_shards(num_shards));
            let outcomes: Vec<bool> = txns
                .iter()
                .enumerate()
                .map(|(i, (ops, value))| {
                    let mut rw = ReadWriteSet::new();
                    for j in 0..*ops as u64 {
                        let key = Key(i as u64 * stride + j);
                        rw.record_read(key, store.version_of(key));
                        rw.record_write(key, Value::new(value.wrapping_add(j)));
                    }
                    committer.commit(&rw, true).is_applied()
                })
                .collect();
            let state: Vec<(u64, u64)> = (0..txns.len() as u64 * stride)
                .map(|k| {
                    let e = store.get(Key(k)).unwrap();
                    (e.value.data, e.version.0)
                })
                .collect();
            (outcomes, state)
        };
        prop_assert_eq!(run(1), run(shards));
    }

    /// The same equivalence holds when the sharded side runs on the
    /// multi-threaded `ShardScheduler` worker pool.
    #[test]
    fn sharded_pool_equivalent_to_single_shard_for_conflict_free_batches(
        values in prop::collection::vec(any::<u64>(), 1..60),
        shards in 2usize..12,
    ) {
        let sequential = {
            let store = Arc::new(VersionedStore::new());
            store.load((0..values.len() as u64).map(|k| (Key(k), Value::new(0))));
            for (i, v) in values.iter().enumerate() {
                let mut rw = ReadWriteSet::new();
                rw.record_read(Key(i as u64), Version(1));
                rw.record_write(Key(i as u64), Value::new(*v));
                let c = ShardedCommitter::new(Arc::clone(&store), &ShardingConfig::default());
                prop_assert!(c.commit(&rw, true).is_applied());
            }
            (0..values.len() as u64)
                .map(|k| store.get(Key(k)).unwrap().value.data)
                .collect::<Vec<u64>>()
        };
        let pooled = {
            let store = Arc::new(VersionedStore::new());
            store.load((0..values.len() as u64).map(|k| (Key(k), Value::new(0))));
            let committer = Arc::new(ShardedCommitter::new(
                Arc::clone(&store),
                &ShardingConfig::with_shards(shards),
            ));
            let pool = ShardScheduler::new(Arc::clone(&committer), 4, true);
            let batch: Vec<ReadWriteSet> = values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut rw = ReadWriteSet::new();
                    rw.record_read(Key(i as u64), Version(1));
                    rw.record_write(Key(i as u64), Value::new(*v));
                    rw
                })
                .collect();
            pool.submit(1, batch);
            pool.drain();
            prop_assert_eq!(committer.committed(), values.len() as u64);
            pool.shutdown();
            (0..values.len() as u64)
                .map(|k| store.get(Key(k)).unwrap().value.data)
                .collect::<Vec<u64>>()
        };
        prop_assert_eq!(sequential, pooled);
    }

    /// Storage versions increase monotonically under arbitrary writes.
    #[test]
    fn storage_versions_monotonic(writes in prop::collection::vec((0u64..20, any::<u64>()), 1..50)) {
        let store = VersionedStore::new();
        let mut last: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (k, v) in writes {
            let version = store.put(Key(k), Value::new(v));
            let prev = last.insert(k, version.0);
            prop_assert!(prev.is_none() || prev.unwrap() < version.0);
        }
    }

    /// Aggregate batch verification accepts exactly the batches whose
    /// every per-transaction signature check passes: any subset of
    /// corrupted signatures flips the aggregate check, and the bisecting
    /// fallback locates precisely the corrupted indices.
    #[test]
    fn aggregate_accepts_iff_every_signature_valid(
        clients in prop::collection::vec(0u32..16, 1..24),
        corrupt_mask in prop::collection::vec(any::<bool>(), 24..25),
    ) {
        let provider = CryptoProvider::new(33);
        let mut claims: Vec<(ComponentId, Digest, Signature)> = clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let id = ComponentId::Client(ClientId(*c));
                let digest =
                    serverless_bft::crypto::digest_u64s("agg-prop", &[i as u64, u64::from(*c)]);
                let sig = provider.handle(id).sign(&digest);
                (id, digest, sig)
            })
            .collect();
        // Corrupt a subset with index-distinct deltas (flip one bit of
        // byte i), so no two corruptions can cancel in the XOR fold.
        let mut corrupted: Vec<usize> = Vec::new();
        for (i, claim) in claims.iter_mut().enumerate() {
            if corrupt_mask[i] {
                claim.2 .0[i % 64] ^= 0x10;
                corrupted.push(i);
            }
        }
        let pairs: Vec<(ComponentId, Digest)> =
            claims.iter().map(|(id, d, _)| (*id, *d)).collect();
        let aggregate = AggregateSignature::from_signatures(claims.iter().map(|(_, _, s)| s));
        let every_valid = claims
            .iter()
            .all(|(id, d, s)| provider.verify(*id, d, s));
        prop_assert_eq!(corrupted.is_empty(), every_valid);
        prop_assert_eq!(
            provider.verify_aggregate(&pairs, &aggregate),
            every_valid,
            "aggregate must accept exactly when every per-txn check passes"
        );
        prop_assert_eq!(provider.locate_invalid_signatures(&claims), corrupted);
    }

    /// The bisecting fallback pinpoints a single corrupted signature at
    /// any position, under any corruption of the signature bytes.
    #[test]
    fn bisect_pinpoints_single_corruption(
        n in 1usize..32,
        position_seed in any::<u64>(),
        byte in 0usize..64,
        flip in 1u64..256,
    ) {
        let provider = CryptoProvider::new(12);
        let mut claims: Vec<(ComponentId, Digest, Signature)> = (0..n)
            .map(|i| {
                let id = ComponentId::Client(ClientId((i % 7) as u32));
                let digest = serverless_bft::crypto::digest_u64s("bisect-prop", &[i as u64]);
                let sig = provider.handle(id).sign(&digest);
                (id, digest, sig)
            })
            .collect();
        let position = (position_seed as usize) % n;
        claims[position].2 .0[byte] ^= flip as u8;
        let pairs: Vec<(ComponentId, Digest)> =
            claims.iter().map(|(id, d, _)| (*id, *d)).collect();
        let aggregate = AggregateSignature::from_signatures(claims.iter().map(|(_, _, s)| s));
        prop_assert!(!provider.verify_aggregate(&pairs, &aggregate));
        prop_assert_eq!(
            provider.locate_invalid_signatures(&claims),
            vec![position],
            "bisection must name exactly the corrupted transaction"
        );
    }

    /// The batcher's incrementally accumulated wire digest is identical
    /// to the one-shot batch digest for arbitrary batches, so the
    /// pre-memoized digest a released batch carries is always the digest
    /// the replicas recompute and check.
    #[test]
    fn batcher_incremental_digest_matches_one_shot(
        op_lists in prop::collection::vec(arb_ops(), 1..30),
    ) {
        let mut batcher = Batcher::new(op_lists.len(), SimDuration::from_millis(5));
        let mut released = None;
        for (i, ops) in op_lists.iter().enumerate() {
            let txn = Transaction::new(
                TxnId::new(ClientId((i % 5) as u32), i as u64),
                ops.clone(),
            );
            released = batcher.push(txn, Digest::ZERO, Signature::ZERO, SimTime::ZERO);
        }
        let released = released.expect("batch released at the configured size");
        let cached = released.batch().cached_digest().expect("memo prefilled");
        prop_assert_eq!(cached, compute_batch_digest(released.batch()));
        prop_assert_eq!(cached, batch_digest(released.batch()));
    }

    /// The ordering-time classification agrees with the apply-time
    /// re-derivation for arbitrary key sets and shard counts: the two
    /// sides of the trust-but-verify protocol can never disagree for an
    /// honest primary.
    #[test]
    fn ordering_plan_matches_apply_time_rederivation(
        keys in prop::collection::vec(0u64..1_000, 0..12),
        shards in 1usize..16,
    ) {
        let router = ShardRouter::new(shards);
        let plan = router.plan_keys(keys.iter().copied().map(Key));
        match plan {
            ShardPlan::Unplanned => prop_assert!(keys.is_empty()),
            ShardPlan::SingleHome(home) => {
                prop_assert!(router.all_on(home, keys.iter().copied().map(Key)));
            }
            ShardPlan::CrossHome => {
                let distinct: BTreeSet<_> =
                    keys.iter().map(|k| router.shard_of(Key(*k))).collect();
                prop_assert!(distinct.len() >= 2);
            }
        }
    }

    /// **Planner equivalence**: routed execution ≡ unrouted execution.
    ///
    /// The same ordered VERIFY stream — random Zipf-skewed keys, random
    /// shard counts, forced cross-home batches, and arbitrary (honest
    /// *or lying*) plan tags — through a plan-honouring verifier (with
    /// or without the worker pool) and through an untagged synchronous
    /// verifier must produce byte-identical results: the same
    /// per-transaction commit/abort outcomes (= the same per-client
    /// responses) and the same final KV state.
    #[test]
    fn planner_routed_execution_equals_unrouted(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..255, any::<u64>(), any::<bool>()), 1..6),
            1..8,
        ),
        shards in 1usize..12,
        skew in 0u32..3,
        lie_mask in any::<u64>(),
        attach_pool in any::<bool>(),
    ) {
        let provider = CryptoProvider::new(17);
        let router = ShardRouter::new(shards);
        // Materialise the batches once: read-write sets with version-1
        // reads (some go stale as earlier batches write — exercising
        // aborts) and an occasional forced cross-home second key.
        let all_results: Vec<Vec<TxnResult>> = batches
            .iter()
            .enumerate()
            .map(|(b, txns)| {
                txns.iter()
                    .enumerate()
                    .map(|(i, (key, value, cross))| {
                        // Zipf-style skew: shifting compresses the key
                        // space towards the head.
                        let key = Key(key >> (skew * 3));
                        let mut rwset = ReadWriteSet::new();
                        rwset.record_read(key, Version(1));
                        rwset.record_write(key, Value::new(*value));
                        if *cross {
                            // Force a second key on another shard when
                            // one exists.
                            if let Some(far) = (0..255u64)
                                .map(Key)
                                .find(|k| router.shard_of(*k) != router.shard_of(key))
                            {
                                rwset.record_write(far, Value::new(value.wrapping_add(1)));
                            }
                        }
                        TxnResult {
                            txn: TxnId::new(ClientId(i as u32), b as u64),
                            output: *value,
                            rwset,
                        }
                    })
                    .collect()
            })
            .collect();
        // Tags for the routed run: the honest classification, or — when
        // the lie bit fires — a byzantine SingleHome(0) claim.
        let plans: Vec<ShardPlan> = all_results
            .iter()
            .enumerate()
            .map(|(b, results)| {
                if lie_mask & (1 << (b % 64)) != 0 {
                    ShardPlan::SingleHome(serverless_bft::types::ShardId(0))
                } else {
                    router.plan_keys(results.iter().flat_map(|r| {
                        r.rwset
                            .reads
                            .iter()
                            .map(|(k, _)| *k)
                            .chain(r.rwset.writes.iter().map(|(k, _)| *k))
                    }))
                }
            })
            .collect();
        let run = |tagged: bool, pool: bool| {
            let (store, mut verifier) = equivalence_verifier(&provider, shards, pool);
            let mut outcomes = Vec::new();
            for (b, results) in all_results.iter().enumerate() {
                let seq = b as u64 + 1;
                let plan = if tagged { plans[b] } else { ShardPlan::Unplanned };
                let m1 = equivalence_verify(&provider, 1, seq, results.clone(), plan);
                let m2 = equivalence_verify(&provider, 2, seq, results.clone(), plan);
                let _ = verifier.on_verify(&m1);
                let actions = verifier.on_verify(&m2);
                for action in &actions {
                    if let Some(env) = action.as_send() {
                        outcomes.push(env.msg.kind().to_string());
                    }
                }
            }
            let state: Vec<(u64, u64)> = (0..256u64)
                .map(|k| {
                    let e = store.get(Key(k)).expect("populated key");
                    (e.value.data, e.version.0)
                })
                .collect();
            (
                verifier.committed_txns(),
                verifier.aborted_txns(),
                outcomes,
                state,
            )
        };
        let routed = run(true, attach_pool);
        let unrouted = run(false, false);
        prop_assert_eq!(&routed.0, &unrouted.0, "committed counts diverge");
        prop_assert_eq!(&routed.1, &unrouted.1, "aborted counts diverge");
        prop_assert_eq!(&routed.2, &unrouted.2, "per-client responses diverge");
        prop_assert_eq!(&routed.3, &unrouted.3, "final KV state diverges");
    }

    /// **Placement equivalence**: pinned placement ≡ round-robin placement.
    ///
    /// The same committed stream — random Zipf-skewed keys, random shard
    /// and region counts, forced cross-home batches — is executed three
    /// times end to end through real invokers and executors: with the
    /// paper's round-robin placement, with plan-aware pinning against the
    /// geo partition, and with pinning under a [`RegionOutage`] of one
    /// region (exercising the deterministic fallback). Per-transaction
    /// outcomes, client responses and the final KV state must be
    /// byte-identical in all three; only the spawn regions may differ.
    /// This is what licenses the invoker to treat placement as a pure
    /// performance hint.
    #[test]
    fn placement_equals_round_robin(
        batches in prop::collection::vec(
            prop::collection::vec((0u64..255, any::<u64>(), any::<bool>()), 1..5),
            1..6,
        ),
        shards in 1usize..10,
        region_count in 1usize..6,
        skew in 0u32..3,
    ) {
        let provider = CryptoProvider::new(23);
        let router = ShardRouter::new(shards);
        let regions = RegionSet::first_n(region_count);
        // One region the outage run takes down (the second of the set,
        // so multi-region runs genuinely lose pin targets).
        let downed = regions.round_robin(1);
        // Materialise the committed stream once: read-modify-writes over
        // a skew-compressed key space, with an occasional forced second
        // key on another shard (a cross-home batch).
        let all_txns: Vec<Vec<Transaction>> = batches
            .iter()
            .enumerate()
            .map(|(b, txns)| {
                txns.iter()
                    .enumerate()
                    .map(|(i, (key, salt, cross))| {
                        let key = Key(key >> (skew * 3));
                        let mut ops = vec![Operation::ReadModifyWrite(key, *salt)];
                        if *cross {
                            if let Some(far) = (0..255u64)
                                .map(Key)
                                .find(|k| router.shard_of(*k) != router.shard_of(key))
                            {
                                ops.push(Operation::ReadModifyWrite(far, salt.wrapping_add(1)));
                            }
                        }
                        Transaction::new(TxnId::new(ClientId(i as u32), b as u64), ops)
                            .with_inferred_rwset()
                    })
                    .collect()
            })
            .collect();
        #[derive(Clone, Copy)]
        enum Placement {
            RoundRobin,
            Pinned,
            PinnedUnderOutage,
        }
        let run = |placement: Placement| {
            let (store, mut verifier) = equivalence_verifier(&provider, shards, false);
            let mut invoker = match placement {
                Placement::RoundRobin => Invoker::new(NodeId(0), regions.clone()),
                _ => Invoker::new(NodeId(0), regions.clone())
                    .with_partition(RegionPartition::new(regions.clone(), shards)),
            };
            if matches!(placement, Placement::PinnedUnderOutage) {
                invoker.mark_region_down(downed);
            }
            let mut next_executor = 0u64;
            let mut responses = Vec::new();
            let mut spawn_regions: Vec<Region> = Vec::new();
            for (b, txns) in all_txns.iter().enumerate() {
                let seq = b as u64 + 1;
                let batch = Batch::new(txns.clone());
                let digest = batch_digest(&batch);
                let plan = router.plan_keys(
                    batch.iter().flat_map(|t| t.ops.iter().map(|op| op.key())),
                );
                let cd = commit_digest(ViewNumber(0), SeqNum(seq), &digest);
                let entries = (0..3u32)
                    .map(|n| {
                        let kp = provider
                            .key_store()
                            .keypair_for(ComponentId::Node(NodeId(n)));
                        (NodeId(n), SimSigner::sign(&kp, &cd))
                    })
                    .collect();
                let certificate =
                    Arc::new(CommitCertificate::new(ViewNumber(0), SeqNum(seq), digest, entries));
                let signing =
                    ExecuteRequest::signing_digest(ViewNumber(0), SeqNum(seq), &digest, NodeId(0));
                let execute = ExecuteRequest {
                    view: ViewNumber(0),
                    seq: SeqNum(seq),
                    digest,
                    batch,
                    certificate,
                    plan,
                    spawner: NodeId(0),
                    signature: provider.handle(ComponentId::Node(NodeId(0))).sign(&signing),
                };
                let spawn_plan = invoker.plan_placed(SeqNum(seq), 3, plan);
                prop_assert_eq!(spawn_plan.requests.len(), 3, "full spawn complement");
                // f_E + 1 = 2 matching VERIFYs validate the batch; run the
                // first two spawned executors wherever they were placed.
                for request in &spawn_plan.requests[..2] {
                    spawn_regions.push(request.region);
                    let id = ExecutorId(next_executor);
                    next_executor += 1;
                    let executor = Executor::new(
                        id,
                        request.region,
                        ExecutorBehavior::Honest,
                        provider.handle(ComponentId::Executor(id)),
                        StorageReader::new(Arc::clone(&store)),
                        4,
                        3,
                    );
                    let output = executor.handle_execute(&execute).expect("honest EXECUTE");
                    for verify in output.verify_messages {
                        for action in verifier.on_verify(&verify) {
                            if let Some(env) = action.as_send() {
                                responses.push(format!("{:?}", env.msg));
                            }
                        }
                    }
                }
            }
            let state: Vec<(u64, u64)> = (0..256u64)
                .map(|k| {
                    let e = store.get(Key(k)).expect("populated key");
                    (e.value.data, e.version.0)
                })
                .collect();
            (
                verifier.committed_txns(),
                verifier.aborted_txns(),
                responses,
                state,
                spawn_regions,
            )
        };
        let rr = run(Placement::RoundRobin);
        let pinned = run(Placement::Pinned);
        let outage = run(Placement::PinnedUnderOutage);
        for (label, side) in [("pinned", &pinned), ("pinned-under-outage", &outage)] {
            prop_assert_eq!(&rr.0, &side.0, "{}: committed counts diverge", label);
            prop_assert_eq!(&rr.1, &side.1, "{}: aborted counts diverge", label);
            prop_assert_eq!(&rr.2, &side.2, "{}: client responses diverge", label);
            prop_assert_eq!(&rr.3, &side.3, "{}: final KV state diverges", label);
        }
        // The equivalence is not vacuous: the fallback really avoids the
        // downed region whenever an alternative exists.
        if region_count > 1 {
            prop_assert!(outage.4.iter().all(|r| *r != downed));
        }
    }
}
