//! Fault-injection integration tests: byzantine shim nodes, byzantine
//! executors and verifier flooding, exercised through the simulator.

use serverless_bft::core::{ShimAttack, SystemBuilder};
use serverless_bft::serverless::cloud::CloudFaultPlan;
use serverless_bft::serverless::{ExecutorBehavior, RegionOutage};
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{
    ConflictHandling, NodeId, Region, ShardingConfig, SimDuration, SystemConfig,
};

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.workload.num_records = 5_000;
    cfg.workload.batch_size = 10;
    cfg.timers.client_timeout = SimDuration::from_millis(40);
    cfg.timers.node_timeout = SimDuration::from_millis(30);
    cfg.timers.retransmit_timeout = SimDuration::from_millis(30);
    cfg
}

fn params() -> SimParams {
    SimParams {
        duration: SimDuration::from_millis(500),
        warmup: SimDuration::from_millis(50),
        num_clients: 60,
        ..SimParams::default()
    }
}

#[test]
fn request_suppression_is_recovered_by_view_change() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SuppressRequests)
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 0,
        "progress must resume after the byzantine primary is replaced"
    );
}

#[test]
fn nodes_in_dark_do_not_stop_the_shim() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(
            NodeId(0),
            ShimAttack::KeepInDark {
                victims: vec![NodeId(3)],
            },
        )
        .build();
    let metrics = SimHarness::new(system, params()).run();
    // With f_R = 1, one node in the dark cannot stop consensus.
    assert!(
        metrics.committed_txns > 100,
        "committed {}",
        metrics.committed_txns
    );
}

#[test]
fn wrong_result_executors_are_outvoted() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::WrongResult,
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
    assert_eq!(
        metrics.aborted_txns, 0,
        "f_E byzantine executors must be masked"
    );
}

#[test]
fn crashing_executors_are_tolerated() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::Crash,
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn verifier_flooding_by_duplicate_executors_is_absorbed() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::DuplicateVerify { copies: 10 },
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn fewer_executor_spawning_still_commits_under_primary_only_quorum() {
    // The primary spawns only f_E + 1 = 2 executors instead of 3: the
    // verifier can still collect f_E + 1 matching VERIFY messages as long
    // as the spawned ones are honest.
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SpawnFewer { count: 2 })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn duplicate_spawning_floods_but_does_not_break_safety() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SpawnDuplicates { extra: 2 })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
    // The flooding attacker paid for noticeably more executors.
    assert!(metrics.executors_spawned as f64 >= metrics.committed_txns as f64 / 10.0 * 3.0);
}

/// A planner deployment: known read-write sets over 8 shards, so the
/// ordering-time lanes are active at the primary.
fn planner_config() -> SystemConfig {
    let mut cfg = config();
    cfg.conflict_handling = ConflictHandling::KnownRwSets;
    cfg.sharding = ShardingConfig::with_shards(8);
    cfg
}

#[test]
fn misplanning_primary_is_detected_and_cannot_stop_progress() {
    // The byzantine primary tags every batch SingleHome(0), whatever its
    // footprint. The verifier's trust-but-verify re-derivation must
    // catch the lies, fall back to unplanned routing, and keep
    // committing — state safety and liveness are unaffected.
    let system = SystemBuilder::new(planner_config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::MisplanBatches)
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 100,
        "committed {}",
        metrics.committed_txns
    );
    assert!(
        metrics.plan_mismatches > 0,
        "the forged tags must be detected at apply time"
    );
    assert_eq!(
        metrics.divergent_aborts, 0,
        "mis-planning must never corrupt execution"
    );
}

#[test]
fn misplanning_and_honest_runs_commit_identically() {
    // The plan tag is a pure routing hint: a run whose primary forges
    // every tag must produce exactly the same committed/aborted counts
    // (and response stream) as the honest run of the same workload.
    let run = |attack: bool| {
        let mut builder = SystemBuilder::new(planner_config()).clients(60);
        if attack {
            builder = builder.attack(NodeId(0), ShimAttack::MisplanBatches);
        }
        SimHarness::new(builder.build(), params()).run()
    };
    let honest = run(false);
    let attacked = run(true);
    assert!(honest.planned_batches > 0, "honest tags earn the fast path");
    assert_eq!(honest.plan_mismatches, 0);
    assert!(attacked.plan_mismatches > 0);
    assert_eq!(honest.committed_txns, attacked.committed_txns);
    assert_eq!(honest.aborted_txns, attacked.aborted_txns);
    assert_eq!(honest.latency.count(), attacked.latency.count());
}

/// A geo deployment: planner lanes over geo-partitioned storage spread
/// across 3 regions, with plan-aware (pinned) executor placement.
fn geo_config() -> SystemConfig {
    let mut cfg = planner_config();
    cfg.regions = serverless_bft::types::RegionSet::first_n(3);
    cfg.sharding = ShardingConfig::with_shards(8).with_geo_partitioning();
    cfg
}

#[test]
fn region_outage_preserves_liveness_and_the_spawn_margin() {
    // A whole region goes dark. The cloud would reject every spawn into
    // it, but the invokers know about the outage, so pinned batches
    // homed there fall back to the (outage-aware) rotation: not one
    // spawn request targets the dead region, every batch still gets its
    // full executor complement, and the system keeps committing.
    let system = SystemBuilder::new(geo_config())
        .clients(60)
        .region_outage(RegionOutage::of(Region::Ohio))
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 100,
        "liveness under a region outage: committed {}",
        metrics.committed_txns
    );
    assert!(
        metrics.placement_fallbacks > 0,
        "batches homed in the dead region must fall back"
    );
    assert!(
        metrics.pinned_spawns > 0,
        "batches homed in healthy regions keep their pin"
    );
    assert_eq!(
        metrics.spawns_rejected, 0,
        "the invokers must never route a spawn into the dead region"
    );
    // The spawn margin is intact: every validated batch was served by
    // its full executors_per_batch complement despite the outage.
    assert!(
        metrics.executors_spawned >= metrics.validated_batches * 3,
        "spawn margin eroded: {} executors for {} batches",
        metrics.executors_spawned,
        metrics.validated_batches
    );
    assert_eq!(metrics.divergent_aborts, 0);
}

#[test]
fn region_outage_and_healthy_runs_commit_identically() {
    // Placement is a pure performance hint, even mid-fault: the same
    // committed stream driven once with healthy pinning and once with
    // the home region down (forcing the round-robin fallback) must
    // produce identical commit counts, responses and final storage
    // state — only the spawn regions may differ.
    use serverless_bft::consensus::CftReplica;
    use serverless_bft::core::events::{Action, ClientRequest, ProtocolMessage};
    use serverless_bft::core::verifier::{Verifier, VerifierConfig};
    use serverless_bft::core::ShimNode;
    use serverless_bft::crypto::CryptoProvider;
    use serverless_bft::serverless::Executor;
    use serverless_bft::sharding::ShardRouter;
    use serverless_bft::storage::{StorageReader, YcsbTable};
    use serverless_bft::types::{
        ClientId, ComponentId, ExecutorId, FaultParams, Key, Operation, RegionPartition, RegionSet,
        SimTime, Transaction, TxnId,
    };

    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.conflict_handling = ConflictHandling::KnownRwSets;
    cfg.regions = RegionSet::first_n(3);
    cfg.sharding = ShardingConfig::with_shards(4).with_geo_partitioning();
    cfg.workload.batch_size = 1;

    // Keys homed (key → shard → region) in Oregon, so healthy pinning
    // targets Oregon and the outage run must steer around it.
    let router = ShardRouter::new(4);
    let partition = RegionPartition::new(RegionSet::first_n(3), 4);
    let oregon_keys: Vec<Key> = (1..)
        .map(Key)
        .filter(|k| partition.home_of(router.shard_of(*k)) == Region::Oregon)
        .take(6)
        .collect();

    let run = |outage: bool| {
        let provider = CryptoProvider::new(11);
        let store = YcsbTable::populate(1_000).store().clone();
        // A 1-node CFT shim commits every submission immediately, so the
        // committed stream is identical by construction across runs.
        let mut node = ShimNode::new(
            NodeId(0),
            cfg.clone(),
            provider.handle(ComponentId::Node(NodeId(0))),
            Box::new(CftReplica::new(
                NodeId(0),
                FaultParams {
                    n_r: 1,
                    f_r: 0,
                    n_e: 3,
                    f_e: 1,
                },
                cfg.timers.node_timeout,
            )),
        );
        if outage {
            node.mark_region_down(Region::Oregon);
        }
        let mut verifier = Verifier::new(
            provider.handle(ComponentId::Verifier),
            std::sync::Arc::clone(&store),
            VerifierConfig {
                params: FaultParams::for_shim_size(4),
                conflict_handling: ConflictHandling::KnownRwSets,
                abort_timeout: SimDuration::from_millis(100),
                cert_quorum: 0,
                spawned_per_batch: 3,
                sharding: cfg.sharding,
                checkpoint_interval: cfg.timers.checkpoint_interval,
            },
        );
        let mut next_executor = 0u64;
        let mut spawn_regions = Vec::new();
        let mut responses = Vec::new();
        for (i, key) in oregon_keys.iter().enumerate() {
            let txn = Transaction::new(
                TxnId::new(ClientId(i as u32), 0),
                vec![Operation::ReadModifyWrite(*key, 7)],
            )
            .with_inferred_rwset();
            let digest = ClientRequest::signing_digest(&txn);
            let request = ClientRequest {
                signature: provider
                    .handle(ComponentId::Client(ClientId(i as u32)))
                    .sign(&digest),
                txn,
            };
            for action in node.on_client_request(&request, SimTime::ZERO) {
                let Action::SpawnExecutor { request, execute } = action else {
                    continue;
                };
                spawn_regions.push(request.region);
                let id = ExecutorId(next_executor);
                next_executor += 1;
                let executor = Executor::new(
                    id,
                    request.region,
                    ExecutorBehavior::Honest,
                    provider.handle(ComponentId::Executor(id)),
                    StorageReader::new(std::sync::Arc::clone(&store)),
                    4,
                    0,
                );
                let output = executor.handle_execute(&execute).expect("honest EXECUTE");
                for verify in output.verify_messages {
                    for action in verifier.on_verify(&verify) {
                        if let Some(env) = action.as_send() {
                            if matches!(
                                env.msg,
                                ProtocolMessage::Response(_) | ProtocolMessage::Abort(_)
                            ) {
                                responses.push(format!("{:?}", env.msg));
                            }
                        }
                    }
                }
            }
        }
        let state: Vec<u64> = oregon_keys.iter().map(|k| store.version_of(*k).0).collect();
        (
            verifier.committed_txns(),
            verifier.aborted_txns(),
            responses,
            state,
            spawn_regions,
        )
    };

    let healthy = run(false);
    let faulted = run(true);
    // The placements really differ …
    assert!(
        healthy.4.iter().all(|r| *r == Region::Oregon),
        "healthy pinning targets the home region: {:?}",
        healthy.4
    );
    assert!(
        faulted.4.iter().all(|r| *r != Region::Oregon),
        "the outage run must avoid the dead region: {:?}",
        faulted.4
    );
    assert_eq!(healthy.4.len(), faulted.4.len(), "full spawn margin kept");
    // … and nothing else does: honest ≡ faulted, byte for byte.
    assert_eq!(healthy.0, faulted.0, "committed counts diverge");
    assert_eq!(healthy.1, faulted.1, "aborted counts diverge");
    assert_eq!(healthy.2, faulted.2, "client responses diverge");
    assert_eq!(healthy.3, faulted.3, "final storage state diverges");
    assert_eq!(healthy.0, oregon_keys.len() as u64, "every batch commits");
}

#[test]
fn decentralized_spawning_survives_a_delaying_primary() {
    use serverless_bft::types::SpawningMode;
    let mut cfg = config();
    cfg.conflict_handling = ConflictHandling::UnknownRwSets;
    cfg.workload.conflict_fraction = 0.2;
    cfg.spawning = SpawningMode::Decentralized;
    let system = SystemBuilder::new(cfg)
        .clients(60)
        .attack(
            NodeId(0),
            ShimAttack::DelaySpawning {
                delay: SimDuration::from_millis(200),
            },
        )
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 50,
        "decentralized spawning must mask the delaying primary"
    );
}

/// Component-level fault injection: a mis-planning primary is detected by
/// the verifier, the shim replaces it through a view change, and the new
/// honest primary's tags earn the fast path again — end-to-end liveness
/// of the trust-but-verify protocol across a primary replacement.
#[test]
fn misplanning_primary_is_replaced_and_the_fast_path_returns() {
    use serverless_bft::consensus::{ConsensusMessage, PbftReplica};
    use serverless_bft::core::events::{
        Action, ClientRequest, Destination, ProtocolMessage, RecoverySubject, ReplaceMessage,
    };
    use serverless_bft::core::verifier::{Verifier, VerifierConfig};
    use serverless_bft::core::{AttackInjector, ShimNode};
    use serverless_bft::crypto::CryptoProvider;
    use serverless_bft::serverless::{Executor, ExecutorBehavior};
    use serverless_bft::sharding::ShardRouter;
    use serverless_bft::storage::{StorageReader, YcsbTable};
    use serverless_bft::types::{
        ClientId, ComponentId, ExecutorId, FaultParams, Key, Operation, Region, SeqNum, Signature,
        SimTime, Transaction, TxnId,
    };

    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.conflict_handling = ConflictHandling::KnownRwSets;
    cfg.sharding = ShardingConfig::with_shards(8);
    cfg.workload.batch_size = 1;

    let provider = CryptoProvider::new(21);
    let store = YcsbTable::populate(1_000).store().clone();
    let mut nodes: Vec<ShimNode> = (0..4u32)
        .map(|i| {
            ShimNode::new(
                NodeId(i),
                cfg.clone(),
                provider.handle(ComponentId::Node(NodeId(i))),
                Box::new(PbftReplica::new(
                    NodeId(i),
                    cfg.fault,
                    provider.handle(ComponentId::Node(NodeId(i))),
                    cfg.timers.node_timeout,
                    cfg.timers.checkpoint_interval,
                )),
            )
        })
        .collect();
    let mut verifier = Verifier::new(
        provider.handle(ComponentId::Verifier),
        std::sync::Arc::clone(&store),
        VerifierConfig {
            params: FaultParams::for_shim_size(4),
            conflict_handling: ConflictHandling::KnownRwSets,
            abort_timeout: SimDuration::from_millis(100),
            cert_quorum: 3,
            spawned_per_batch: 3,
            sharding: cfg.sharding,
            checkpoint_interval: cfg.timers.checkpoint_interval,
        },
    );
    let mut injector = AttackInjector::new(4);
    injector.compromise(NodeId(0), ShimAttack::MisplanBatches);

    // Drives consensus among the nodes (attacks applied at emission)
    // until quiescence; returns the non-consensus leftovers per node.
    let run_consensus = |nodes: &mut Vec<ShimNode>,
                         injector: &mut AttackInjector,
                         origin: usize,
                         actions: Vec<Action>|
     -> Vec<(NodeId, Action)> {
        let mut external = Vec::new();
        let mut queue: std::collections::VecDeque<(usize, usize, ConsensusMessage)> =
            std::collections::VecDeque::new();
        let push = |origin: usize,
                    actions: Vec<Action>,
                    queue: &mut std::collections::VecDeque<(usize, usize, ConsensusMessage)>,
                    external: &mut Vec<(NodeId, Action)>| {
            for a in actions {
                match &a {
                    Action::Send(env) => match (&env.to, &env.msg) {
                        (Destination::AllNodes, ProtocolMessage::Consensus(m)) => {
                            for to in 0..4usize {
                                if to != origin {
                                    queue.push_back((origin, to, m.clone()));
                                }
                            }
                        }
                        (Destination::Node(to), ProtocolMessage::Consensus(m)) => {
                            queue.push_back((origin, to.0 as usize, m.clone()));
                        }
                        _ => external.push((NodeId(origin as u32), a.clone())),
                    },
                    _ => external.push((NodeId(origin as u32), a.clone())),
                }
            }
        };
        let actions = injector.apply(NodeId(origin as u32), actions);
        push(origin, actions, &mut queue, &mut external);
        while let Some((from, to, msg)) = queue.pop_front() {
            let acts = nodes[to].on_consensus_message(NodeId(from as u32), msg);
            let acts = injector.apply(NodeId(to as u32), acts);
            push(to, acts, &mut queue, &mut external);
        }
        external
    };

    // Runs the spawned executors of `external` and feeds their VERIFYs to
    // the verifier; returns every BatchValidated the verifier broadcast.
    let mut next_executor = 0u64;
    let mut run_executors =
        |external: &[(NodeId, Action)], verifier: &mut Verifier| -> Vec<ProtocolMessage> {
            let mut validated = Vec::new();
            for (_, action) in external {
                let Action::SpawnExecutor { execute, .. } = action else {
                    continue;
                };
                let id = ExecutorId(next_executor);
                next_executor += 1;
                let executor = Executor::new(
                    id,
                    Region::Oregon,
                    ExecutorBehavior::Honest,
                    provider.handle(ComponentId::Executor(id)),
                    StorageReader::new(std::sync::Arc::clone(&store)),
                    4,
                    3,
                );
                let output = executor.handle_execute(execute).expect("honest EXECUTE");
                for verify in output.verify_messages {
                    for action in verifier.on_verify(&verify) {
                        if let Some(env) = action.as_send() {
                            if matches!(env.msg, ProtocolMessage::BatchValidated(_)) {
                                validated.push(env.msg.clone());
                            }
                        }
                    }
                }
            }
            validated
        };

    let router = ShardRouter::new(8);
    // Keys off shard 0, so the forged SingleHome(0) tags are always lies.
    let off_zero: Vec<Key> = (1..)
        .map(Key)
        .filter(|k| router.shard_of(*k).0 != 0)
        .take(6)
        .collect();
    let request = |client: u32, key: Key| {
        let txn = Transaction::new(
            TxnId::new(ClientId(client), 0),
            vec![Operation::ReadModifyWrite(key, 1)],
        )
        .with_inferred_rwset();
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: provider
                .handle(ComponentId::Client(ClientId(client)))
                .sign(&digest),
            txn,
        }
    };

    // ---- Phase 1: the mis-planning primary orders three batches. ----
    for (i, key) in off_zero[..3].iter().enumerate() {
        let actions = nodes[0].on_client_request(&request(i as u32, *key), SimTime::ZERO);
        let external = run_consensus(&mut nodes, &mut injector, 0, actions);
        let validated = run_executors(&external, &mut verifier);
        assert!(!validated.is_empty(), "batch {i} must validate");
        for msg in validated {
            for node in nodes.iter_mut() {
                let _ = node.on_message(&msg);
            }
        }
    }
    assert_eq!(verifier.committed_txns(), 3, "lies never block commits");
    assert_eq!(verifier.plan_mismatches(), 3, "every forged tag is caught");
    assert_eq!(verifier.planned_batches(), 0, "no lie earns the fast path");
    assert!(injector.plans_forged() > 0);

    // ---- Phase 2: the verifier-style REPLACE triggers a view change. ----
    let replace = ProtocolMessage::Replace(ReplaceMessage {
        subject: RecoverySubject::Seq(SeqNum(1)),
        signature: Signature::ZERO,
    });
    let pending: Vec<(usize, Vec<Action>)> = (1..4usize)
        .map(|i| (i, nodes[i].on_message(&replace)))
        .collect();
    for (origin, actions) in pending {
        let _ = run_consensus(&mut nodes, &mut injector, origin, actions);
    }
    assert_eq!(nodes[1].view(), serverless_bft::types::ViewNumber(1));
    assert!(nodes[1].is_primary(), "node 1 leads the new view");

    // ---- Phase 3: the honest primary's tags earn the fast path. ----
    for (i, key) in off_zero[3..].iter().enumerate() {
        let actions = nodes[1].on_client_request(&request(10 + i as u32, *key), SimTime::ZERO);
        let external = run_consensus(&mut nodes, &mut injector, 1, actions);
        let validated = run_executors(&external, &mut verifier);
        assert!(
            !validated.is_empty(),
            "post-view-change batch {i} must validate"
        );
        for msg in validated {
            for node in nodes.iter_mut() {
                let _ = node.on_message(&msg);
            }
        }
    }
    assert_eq!(verifier.committed_txns(), 6, "liveness across the change");
    assert_eq!(
        verifier.plan_mismatches(),
        3,
        "no further mismatches under the honest primary"
    );
    assert_eq!(
        verifier.planned_batches(),
        3,
        "honest single-home tags take the fast path again"
    );
    // Every write reached storage exactly once.
    for key in &off_zero {
        assert!(store.version_of(*key).0 > 1, "{key:?} was written");
    }
}
