//! Fault-injection integration tests: byzantine shim nodes, byzantine
//! executors and verifier flooding, exercised through the simulator.

use serverless_bft::core::{ShimAttack, SystemBuilder};
use serverless_bft::serverless::cloud::CloudFaultPlan;
use serverless_bft::serverless::ExecutorBehavior;
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{NodeId, SimDuration, SystemConfig};

fn config() -> SystemConfig {
    let mut cfg = SystemConfig::with_shim_size(4);
    cfg.workload.num_records = 5_000;
    cfg.workload.batch_size = 10;
    cfg.timers.client_timeout = SimDuration::from_millis(40);
    cfg.timers.node_timeout = SimDuration::from_millis(30);
    cfg.timers.retransmit_timeout = SimDuration::from_millis(30);
    cfg
}

fn params() -> SimParams {
    SimParams {
        duration: SimDuration::from_millis(500),
        warmup: SimDuration::from_millis(50),
        num_clients: 60,
        ..SimParams::default()
    }
}

#[test]
fn request_suppression_is_recovered_by_view_change() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SuppressRequests)
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 0,
        "progress must resume after the byzantine primary is replaced"
    );
}

#[test]
fn nodes_in_dark_do_not_stop_the_shim() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(
            NodeId(0),
            ShimAttack::KeepInDark {
                victims: vec![NodeId(3)],
            },
        )
        .build();
    let metrics = SimHarness::new(system, params()).run();
    // With f_R = 1, one node in the dark cannot stop consensus.
    assert!(
        metrics.committed_txns > 100,
        "committed {}",
        metrics.committed_txns
    );
}

#[test]
fn wrong_result_executors_are_outvoted() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::WrongResult,
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
    assert_eq!(
        metrics.aborted_txns, 0,
        "f_E byzantine executors must be masked"
    );
}

#[test]
fn crashing_executors_are_tolerated() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::Crash,
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn verifier_flooding_by_duplicate_executors_is_absorbed() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .cloud_faults(CloudFaultPlan {
            byzantine_per_batch: 1,
            behavior: ExecutorBehavior::DuplicateVerify { copies: 10 },
        })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn fewer_executor_spawning_still_commits_under_primary_only_quorum() {
    // The primary spawns only f_E + 1 = 2 executors instead of 3: the
    // verifier can still collect f_E + 1 matching VERIFY messages as long
    // as the spawned ones are honest.
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SpawnFewer { count: 2 })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
}

#[test]
fn duplicate_spawning_floods_but_does_not_break_safety() {
    let system = SystemBuilder::new(config())
        .clients(60)
        .attack(NodeId(0), ShimAttack::SpawnDuplicates { extra: 2 })
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(metrics.committed_txns > 100);
    // The flooding attacker paid for noticeably more executors.
    assert!(metrics.executors_spawned as f64 >= metrics.committed_txns as f64 / 10.0 * 3.0);
}

#[test]
fn decentralized_spawning_survives_a_delaying_primary() {
    use serverless_bft::types::{ConflictHandling, SpawningMode};
    let mut cfg = config();
    cfg.conflict_handling = ConflictHandling::UnknownRwSets;
    cfg.workload.conflict_fraction = 0.2;
    cfg.spawning = SpawningMode::Decentralized;
    let system = SystemBuilder::new(cfg)
        .clients(60)
        .attack(
            NodeId(0),
            ShimAttack::DelaySpawning {
                delay: SimDuration::from_millis(200),
            },
        )
        .build();
    let metrics = SimHarness::new(system, params()).run();
    assert!(
        metrics.committed_txns > 50,
        "decentralized spawning must mask the delaying primary"
    );
}
