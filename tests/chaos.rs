//! Adversarial recovery under composed fault plans.
//!
//! The recovery suite (`tests/recovery.rs`) proves a crash-restarted
//! replica converges when the network cooperates. This suite removes that
//! courtesy: state-transfer traffic is dropped, duplicated, reordered and
//! partitioned; a byzantine peer answers `STATEREQUEST`s with garbage; a
//! replica falls below everyone's checkpoint retention floor; and the
//! discrete-event simulator composes loss, duplication, delay, directed
//! partitions, disk-lag stragglers and simultaneous crash-restarts in one
//! `FaultPlan`. In every case the recovered replica's observable outcome —
//! commit order, derived KV state, client responses — must match a
//! fault-free run (or its above-floor suffix, for checkpoint catch-up).

use proptest::prelude::*;
use serverless_bft::consensus::{ConsensusMessage, ConsensusTimer, OrderingProtocol, PbftReplica};
use serverless_bft::core::{
    Action, ClientRequest, Destination, ProtocolMessage, ProtocolTimer, ShimNode,
};
use serverless_bft::crypto::CryptoProvider;
use serverless_bft::types::{
    Batch, ClientId, ComponentId, DurabilityConfig, Key, NodeId, Operation, SeqNum, SimDuration,
    SimTime, SystemConfig, Transaction, TxnId, Value,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The backup replica whose adversarial recovery the suite watches.
const OBSERVED: usize = 3;

/// Drops the test may inject into state-transfer traffic before the retry
/// budget (8 retransmissions) can no longer absorb them together with the
/// partition window.
const DROP_CAP: u64 = 4;

/// SplitMix64: a tiny deterministic generator for the chaos decisions, so
/// the proptest cases replay exactly from their seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `permille`/1000.
    fn chance(&mut self, permille: u64) -> bool {
        self.next() % 1_000 < permille
    }
}

/// The hostility applied to state-transfer traffic (`STATEREQUEST` /
/// `STATERESPONSE`) touching the observed node. Normal-case consensus
/// traffic is untouched: the synchronous cluster below has no timers, so
/// chaos there would test the harness rather than the recovery path.
struct Chaos {
    rng: SplitMix64,
    loss_permille: u64,
    dup_permille: u64,
    reorder_permille: u64,
    /// Random drops remaining (capped so recovery stays within the
    /// retransmit budget).
    drops_left: u64,
    /// Reorders remaining (capped to rule out livelock).
    reorders_left: u64,
    /// While positive, ALL state-transfer traffic touching the observed
    /// node is dropped; each retry round heals it by one. Models a
    /// directed partition around the recovering replica.
    partition_rounds: u64,
    /// Peers whose state-transfer messages never arrive at all.
    silenced: Vec<usize>,
    /// A byzantine peer whose `STATERESPONSE`s are corrupted in flight
    /// (standing in for a locally lying replica).
    liar: Option<usize>,
    /// Honest `STATERESPONSE`s to swallow before letting one through.
    drop_first_responses: u64,
}

impl Chaos {
    fn none() -> Self {
        Chaos {
            rng: SplitMix64(0),
            loss_permille: 0,
            dup_permille: 0,
            reorder_permille: 0,
            drops_left: 0,
            reorders_left: 0,
            partition_rounds: 0,
            silenced: Vec::new(),
            liar: None,
            drop_first_responses: 0,
        }
    }
}

fn is_state_transfer(msg: &ConsensusMessage) -> bool {
    matches!(
        msg,
        ConsensusMessage::StateRequest(_) | ConsensusMessage::StateResponse(_)
    )
}

/// Replaces every entry's batch with unrelated content: the certificate's
/// batch digest no longer matches, so an honest replica must reject the
/// entry as garbage rather than adopt it.
fn corrupt(msg: &mut ConsensusMessage) {
    if let ConsensusMessage::StateResponse(sr) = msg {
        for e in &mut sr.entries {
            e.batch = Batch::single(Transaction::new(
                TxnId::new(ClientId(9_999), 0),
                vec![Operation::Write(Key(0), Value::new(0xdead))],
            ));
        }
    }
}

fn config(snapshot_interval: u64, checkpoint_interval: u64) -> SystemConfig {
    let mut config = SystemConfig::with_shim_size(4);
    config.workload.batch_size = 2;
    config.durability = DurabilityConfig::enabled().with_snapshot_interval(snapshot_interval);
    config.timers.checkpoint_interval = checkpoint_interval;
    config
}

/// Four PBFT-backed shim nodes driven synchronously with a chaos filter on
/// state-transfer traffic; deliveries and commits at [`OBSERVED`] are
/// recorded off the wire exactly as in `tests/recovery.rs`.
struct ChaosCluster {
    nodes: Vec<ShimNode>,
    provider: Arc<CryptoProvider>,
    batches: BTreeMap<SeqNum, Batch>,
    committed: Vec<SeqNum>,
    clock: SimTime,
    chaos: Chaos,
}

impl ChaosCluster {
    fn new(snapshot_interval: u64, checkpoint_interval: u64) -> Self {
        let config = config(snapshot_interval, checkpoint_interval);
        let provider = CryptoProvider::new(21);
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(PbftReplica::new(
                    NodeId(i),
                    config.fault,
                    provider.handle(ComponentId::Node(NodeId(i))),
                    config.timers.node_timeout,
                    config.timers.checkpoint_interval,
                ));
                ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                )
            })
            .collect();
        ChaosCluster {
            nodes,
            provider,
            batches: BTreeMap::new(),
            committed: Vec::new(),
            clock: SimTime::ZERO,
            chaos: Chaos::none(),
        }
    }

    fn request(&self, i: u64) -> ClientRequest {
        let client = ClientId(i as u32);
        let txn = Transaction::new(
            TxnId::new(client, 0),
            vec![
                Operation::Write(Key(i % 7), Value::new(i * 11 + 1)),
                Operation::ReadModifyWrite(Key((i * 3) % 7), i + 5),
            ],
        )
        .with_inferred_rwset();
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: self
                .provider
                .handle(ComponentId::Client(client))
                .sign(&digest),
            txn,
        }
    }

    /// Routes consensus messages to quiescence, passing state-transfer
    /// traffic that touches the observed node through the chaos filter.
    fn drive(&mut self, origin: usize, actions: Vec<Action>, down: &[usize]) {
        let n = self.nodes.len();
        let mut queue: VecDeque<(usize, usize, ConsensusMessage)> = VecDeque::new();
        self.absorb(origin, actions, &mut queue, n);
        while let Some((from, to, mut msg)) = queue.pop_front() {
            if down.contains(&to) {
                continue;
            }
            if is_state_transfer(&msg) && (from == OBSERVED || to == OBSERVED) {
                if self.chaos.silenced.contains(&from) || self.chaos.partition_rounds > 0 {
                    continue;
                }
                if to == OBSERVED && matches!(msg, ConsensusMessage::StateResponse(_)) {
                    if Some(from) == self.chaos.liar {
                        corrupt(&mut msg);
                    } else if self.chaos.drop_first_responses > 0 {
                        self.chaos.drop_first_responses -= 1;
                        continue;
                    }
                }
                if self.chaos.reorders_left > 0
                    && !queue.is_empty()
                    && self.chaos.rng.chance(self.chaos.reorder_permille)
                {
                    self.chaos.reorders_left -= 1;
                    queue.push_back((from, to, msg));
                    continue;
                }
                if self.chaos.drops_left > 0 && self.chaos.rng.chance(self.chaos.loss_permille) {
                    self.chaos.drops_left -= 1;
                    continue;
                }
                if self.chaos.rng.chance(self.chaos.dup_permille) {
                    queue.push_back((from, to, msg.clone()));
                }
            }
            if to == OBSERVED {
                self.record(&msg);
            }
            let acts = self.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            self.absorb(to, acts, &mut queue, n);
        }
    }

    fn absorb(
        &mut self,
        origin: usize,
        actions: Vec<Action>,
        queue: &mut VecDeque<(usize, usize, ConsensusMessage)>,
        n: usize,
    ) {
        for a in actions {
            match &a {
                Action::Send(env) => match (&env.to, &env.msg) {
                    (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                        for to in 0..n {
                            if to != origin {
                                queue.push_back((origin, to, msg.clone()));
                            }
                        }
                    }
                    (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                        queue.push_back((origin, to.0 as usize, msg.clone()));
                    }
                    _ => {}
                },
                Action::BatchCommitted { seq, .. } if origin == OBSERVED => {
                    self.committed.push(*seq);
                }
                _ => {}
            }
        }
    }

    fn record(&mut self, msg: &ConsensusMessage) {
        match msg {
            ConsensusMessage::PrePrepare(pp) => {
                self.batches.insert(pp.seq, pp.batch.clone());
            }
            ConsensusMessage::StateResponse(sr) => {
                for e in &sr.entries {
                    self.batches.insert(e.seq, e.batch.clone());
                }
            }
            _ => {}
        }
    }

    fn submit_batch(&mut self, batch: u64, down: &[usize]) {
        self.clock += SimDuration::from_millis(100);
        let now = self.clock;
        let r0 = self.request(batch * 2);
        let a0 = self.nodes[0].on_client_request(&r0, now);
        self.drive(0, a0, down);
        let r1 = self.request(batch * 2 + 1);
        let a1 = self.nodes[0].on_client_request(&r1, now);
        self.drive(0, a1, down);
        let polled = self.nodes[0].poll_batcher(now + SimDuration::from_millis(10));
        self.drive(0, polled, down);
    }

    /// Fires the observed node's `STATEREQUEST` retransmission timer until
    /// its state transfer completes (or the replica's retry budget is
    /// spent). Each round heals the partition by one notch, exactly as
    /// wall-clock time would in the event-driven runtimes.
    fn pump_retries(&mut self) {
        for _ in 0..12 {
            if self.chaos.partition_rounds > 0 {
                self.chaos.partition_rounds -= 1;
            }
            if !self.nodes[OBSERVED].is_recovering() {
                break;
            }
            self.clock += SimDuration::from_millis(200);
            let now = self.clock;
            let acts = self.nodes[OBSERVED]
                .on_timer(ProtocolTimer::Consensus(ConsensusTimer::StateTransfer), now);
            self.drive(OBSERVED, acts, &[]);
        }
    }

    fn outcome(&self) -> (Vec<SeqNum>, BTreeMap<u64, u64>, Vec<TxnId>) {
        let mut kv: BTreeMap<u64, u64> = BTreeMap::new();
        let mut responses = Vec::new();
        for seq in &self.committed {
            let batch = self
                .batches
                .get(seq)
                .expect("observed node committed a batch it was never shown");
            for txn in batch.txns() {
                for op in &txn.ops {
                    match op {
                        Operation::Read(_) => {}
                        Operation::Write(k, v) => {
                            kv.insert(k.0, v.data);
                        }
                        Operation::ReadModifyWrite(k, s) => {
                            let slot = kv.entry(k.0).or_insert(0);
                            *slot = slot.wrapping_mul(31).wrapping_add(*s);
                        }
                    }
                }
                responses.push(txn.id);
            }
        }
        (self.committed.clone(), kv, responses)
    }
}

/// A crash-restart run whose recovery happens under `chaos`: the observed
/// backup crashes after `crash_after` batches, misses `dark` batches, then
/// restarts into the hostile network and must still converge before `tail`
/// more batches commit.
fn chaotic_run(
    snapshot_interval: u64,
    crash_after: u64,
    dark: u64,
    tail: u64,
    chaos: Chaos,
) -> ChaosCluster {
    let mut cluster = ChaosCluster::new(snapshot_interval, 100);
    let mut batch = 0;
    for _ in 0..crash_after {
        cluster.submit_batch(batch, &[]);
        batch += 1;
    }
    cluster.nodes[OBSERVED].crash();
    for _ in 0..dark {
        cluster.submit_batch(batch, &[OBSERVED]);
        batch += 1;
    }
    cluster.chaos = chaos;
    let restart = cluster.nodes[OBSERVED].crash_restart();
    cluster.drive(OBSERVED, restart, &[]);
    cluster.pump_retries();
    for _ in 0..tail {
        cluster.submit_batch(batch, &[]);
        batch += 1;
    }
    cluster
}

/// The same workload with no crash and no chaos.
fn baseline_run(snapshot_interval: u64, total: u64) -> ChaosCluster {
    let mut cluster = ChaosCluster::new(snapshot_interval, 100);
    for batch in 0..total {
        cluster.submit_batch(batch, &[]);
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery equivalence survives a hostile network: with up to 20%
    /// loss, duplication, reordering and a partition window around the
    /// recovering replica's state-transfer traffic, the retransmission
    /// schedule still converges and the recovered replica's commit order,
    /// KV state and client responses stay byte-identical to the
    /// fault-free run's.
    #[test]
    fn recovery_under_lossy_network_matches_fault_free_run(
        crash_after in 0u64..3,
        dark in 1u64..3,
        tail in 1u64..3,
        loss_permille in 0u64..201,
        dup_permille in 0u64..151,
        reorder_permille in 0u64..151,
        partition_rounds in 0u64..3,
        snapshot_interval in (0u64..4).prop_map(|i| if i == 0 { 1_000 } else { i }),
        seed in any::<u64>(),
    ) {
        let chaos = Chaos {
            rng: SplitMix64(seed),
            loss_permille,
            dup_permille,
            reorder_permille,
            drops_left: DROP_CAP,
            reorders_left: 4,
            partition_rounds,
            ..Chaos::none()
        };
        let total = crash_after + dark + tail;
        let chaotic = chaotic_run(snapshot_interval, crash_after, dark, tail, chaos);
        let baseline = baseline_run(snapshot_interval, total);
        prop_assert!(
            !chaotic.nodes[OBSERVED].is_recovering(),
            "state transfer must complete within the retry budget"
        );
        let (c_seqs, c_kv, c_resps) = chaotic.outcome();
        let (b_seqs, b_kv, b_resps) = baseline.outcome();
        prop_assert_eq!(c_seqs, b_seqs, "commit order diverged under chaos");
        prop_assert_eq!(c_kv, b_kv, "derived KV state diverged under chaos");
        prop_assert_eq!(c_resps, b_resps, "client responses diverged under chaos");
        prop_assert_eq!(chaotic.batches, baseline.batches);
    }
}

#[test]
fn recovery_completes_despite_a_lying_peer_and_a_silenced_one() {
    // The recovering replica's quorum is one honest node short: node 1
    // never answers, node 2 answers with corrupted batches, and node 0's
    // first response is swallowed. The replica must reject the garbage,
    // rotate its retransmissions and finish from node 0's retry.
    let chaos = Chaos {
        silenced: vec![1],
        liar: Some(2),
        drop_first_responses: 1,
        ..Chaos::none()
    };
    let chaotic = chaotic_run(1_000, 2, 2, 1, chaos);
    let baseline = baseline_run(1_000, 5);
    let node = &chaotic.nodes[OBSERVED];
    assert!(!node.is_recovering(), "recovery must complete");
    assert!(
        node.bad_state_responses() >= 2,
        "every corrupted entry is rejected and counted, got {}",
        node.bad_state_responses()
    );
    assert!(
        node.state_request_retries() >= 1,
        "the swallowed response forces at least one retransmission"
    );
    assert_eq!(chaotic.outcome(), baseline.outcome());
}

#[test]
fn replica_below_the_retention_floor_recovers_via_checkpoint_catch_up() {
    // Featherweight checkpoints every 2 sequences and 4 batches missed:
    // by restart time every peer has truncated its log below the floor
    // the observed replica asks for, so plain suffix transfer is
    // impossible. The replica must adopt a peer's checkpoint floor and
    // resume from there.
    let mut cluster = ChaosCluster::new(1_000, 2);
    cluster.submit_batch(0, &[]);
    cluster.nodes[OBSERVED].crash();
    for batch in 1..5 {
        cluster.submit_batch(batch, &[OBSERVED]);
    }
    let restart = cluster.nodes[OBSERVED].crash_restart();
    cluster.drive(OBSERVED, restart, &[]);
    cluster.pump_retries();
    cluster.submit_batch(5, &[]);

    let node = &cluster.nodes[OBSERVED];
    assert!(!node.is_recovering(), "catch-up must complete recovery");
    assert_eq!(node.catch_ups(), 1, "exactly one checkpoint catch-up");
    // Sequences 2..=4 are permanently skipped (covered by the adopted
    // checkpoint); everything above the floor matches the baseline.
    assert_eq!(
        cluster.committed,
        vec![SeqNum(1), SeqNum(5), SeqNum(6)],
        "commit stream = pre-crash prefix + above-floor suffix"
    );
    let baseline = baseline_run(1_000, 6);
    for seq in [SeqNum(5), SeqNum(6)] {
        assert_eq!(
            cluster.batches.get(&seq),
            baseline.batches.get(&seq),
            "above-floor batch content must match the fault-free run"
        );
    }
}

// ---- digest proposals: bandwidth-frugal mode equivalence -------------------

/// Hostility applied to the digest-reconstruction fetch path
/// (`BATCHFETCH` / `BATCHFILL`) plus control over how much of the client
/// broadcast actually reaches each replica's body cache.
struct DigestChaos {
    rng: SplitMix64,
    /// Probability (permille) that a replica hears a given client
    /// broadcast — 1000 keeps every cache warm, 0 forces all-fetch.
    feed_permille: u64,
    /// Replicas that always hear the broadcast regardless of
    /// `feed_permille` (a poisoner must be warm to have fills to poison:
    /// fills are served from the log, and a still-cold replica holds
    /// nothing).
    warm: Vec<usize>,
    /// Probability (permille) that a fetch/fill message is lost.
    loss_permille: u64,
    /// Random fetch-path drops remaining (capped inside the retry budget).
    drops_left: u64,
    /// Honest `BATCHFILL`s to swallow before letting one through.
    drop_first_fills: u64,
    /// A byzantine peer whose `BATCHFILL` bodies are corrupted in flight:
    /// the ids match the proposal but the operations are garbage, so the
    /// digest check must quarantine and refetch elsewhere.
    poisoner: Option<usize>,
}

impl DigestChaos {
    fn none(feed_permille: u64) -> Self {
        DigestChaos {
            rng: SplitMix64(0),
            feed_permille,
            warm: Vec::new(),
            loss_permille: 0,
            drops_left: 0,
            drop_first_fills: 0,
            poisoner: None,
        }
    }
}

fn is_fetch_path(msg: &ConsensusMessage) -> bool {
    matches!(
        msg,
        ConsensusMessage::BatchFetch(_) | ConsensusMessage::BatchFill(_)
    )
}

/// Keeps every transaction id but replaces the bodies' operations — the
/// reconstruction digest can no longer match, so an honest replica must
/// reject the fill, blame the sender and fetch elsewhere.
fn poison_fill(msg: &mut ConsensusMessage) {
    if let ConsensusMessage::BatchFill(bf) = msg {
        bf.bodies = bf
            .bodies
            .iter()
            .map(|t| Transaction::new(t.id, vec![Operation::Write(Key(63), Value::new(0xbad))]))
            .collect();
    }
}

/// Four digest-mode PBFT shim nodes driven synchronously, with a chaos
/// filter on the fetch path and counters re-homed into a registry so the
/// tests can read the digest cache statistics.
struct DigestCluster {
    nodes: Vec<ShimNode>,
    provider: Arc<CryptoProvider>,
    registry: Arc<serverless_bft::telemetry::Registry>,
    committed: Vec<SeqNum>,
    clock: SimTime,
    chaos: DigestChaos,
}

impl DigestCluster {
    fn new(snapshot_interval: u64, checkpoint_interval: u64, chaos: DigestChaos) -> Self {
        let mut config = config(snapshot_interval, checkpoint_interval);
        config.digest_proposals = true;
        let provider = CryptoProvider::new(21);
        let registry = Arc::new(serverless_bft::telemetry::Registry::new());
        let nodes = (0..config.fault.n_r as u32)
            .map(|i| {
                let ordering: Box<dyn OrderingProtocol + Send> = Box::new(
                    PbftReplica::new(
                        NodeId(i),
                        config.fault,
                        provider.handle(ComponentId::Node(NodeId(i))),
                        config.timers.node_timeout,
                        config.timers.checkpoint_interval,
                    )
                    .with_digest_proposals(true),
                );
                let mut node = ShimNode::new(
                    NodeId(i),
                    config.clone(),
                    provider.handle(ComponentId::Node(NodeId(i))),
                    ordering,
                );
                node.register_metrics(&registry);
                node
            })
            .collect();
        DigestCluster {
            nodes,
            provider,
            registry,
            committed: Vec::new(),
            clock: SimTime::ZERO,
            chaos,
        }
    }

    fn request(&self, i: u64) -> ClientRequest {
        // Identical workload to [`ChaosCluster::request`], so outcomes are
        // comparable across proposal modes.
        let client = ClientId(i as u32);
        let txn = Transaction::new(
            TxnId::new(client, 0),
            vec![
                Operation::Write(Key(i % 7), Value::new(i * 11 + 1)),
                Operation::ReadModifyWrite(Key((i * 3) % 7), i + 5),
            ],
        )
        .with_inferred_rwset();
        let digest = ClientRequest::signing_digest(&txn);
        ClientRequest {
            signature: self
                .provider
                .handle(ComponentId::Client(client))
                .sign(&digest),
            txn,
        }
    }

    fn drive(&mut self, origin: usize, actions: Vec<Action>) {
        let n = self.nodes.len();
        let mut queue: VecDeque<(usize, usize, ConsensusMessage)> = VecDeque::new();
        self.absorb(origin, actions, &mut queue, n);
        while let Some((from, to, mut msg)) = queue.pop_front() {
            if is_fetch_path(&msg) {
                if matches!(msg, ConsensusMessage::BatchFill(_)) {
                    if Some(from) == self.chaos.poisoner {
                        poison_fill(&mut msg);
                    } else if self.chaos.drop_first_fills > 0 {
                        self.chaos.drop_first_fills -= 1;
                        continue;
                    }
                }
                if self.chaos.drops_left > 0 && self.chaos.rng.chance(self.chaos.loss_permille) {
                    self.chaos.drops_left -= 1;
                    continue;
                }
            }
            let acts = self.nodes[to].on_consensus_message(NodeId(from as u32), msg);
            self.absorb(to, acts, &mut queue, n);
        }
    }

    fn absorb(
        &mut self,
        origin: usize,
        actions: Vec<Action>,
        queue: &mut VecDeque<(usize, usize, ConsensusMessage)>,
        n: usize,
    ) {
        for a in actions {
            match &a {
                Action::Send(env) => match (&env.to, &env.msg) {
                    (Destination::AllNodes, ProtocolMessage::Consensus(msg)) => {
                        for to in 0..n {
                            if to != origin {
                                queue.push_back((origin, to, msg.clone()));
                            }
                        }
                    }
                    (Destination::Node(to), ProtocolMessage::Consensus(msg)) => {
                        queue.push_back((origin, to.0 as usize, msg.clone()));
                    }
                    _ => {}
                },
                Action::BatchCommitted { seq, .. } if origin == OBSERVED => {
                    self.committed.push(*seq);
                }
                _ => {}
            }
        }
    }

    /// Submits one 2-transaction batch. Digest-mode clients broadcast to
    /// every node; the chaos feed decides which replicas actually hear it
    /// (a missed broadcast is a forced cache miss).
    fn submit_batch(&mut self, batch: u64) {
        self.clock += SimDuration::from_millis(100);
        let now = self.clock;
        for r in [self.request(batch * 2), self.request(batch * 2 + 1)] {
            for replica in 1..self.nodes.len() {
                if self.chaos.warm.contains(&replica)
                    || self.chaos.rng.chance(self.chaos.feed_permille)
                {
                    let fed = self.nodes[replica].on_client_request(&r, now);
                    self.drive(replica, fed);
                }
            }
            let actions = self.nodes[0].on_client_request(&r, now);
            self.drive(0, actions);
        }
        let polled = self.nodes[0].poll_batcher(now + SimDuration::from_millis(10));
        self.drive(0, polled);
    }

    /// Fires the `Request` retransmission timer for every reconstruction
    /// still missing bodies, until the cluster is quiescent (or the
    /// protocol's own retry budget escalates). Each round models one
    /// timer period passing on every stuck replica.
    fn pump_fetch_retries(&mut self) {
        for _ in 0..16 {
            let stuck: Vec<(usize, Vec<SeqNum>)> = self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| (i, n.pending_reconstructions()))
                .filter(|(_, pending)| !pending.is_empty())
                .collect();
            if stuck.is_empty() {
                break;
            }
            self.clock += SimDuration::from_millis(200);
            let now = self.clock;
            for (i, pending) in stuck {
                for seq in pending {
                    let acts = self.nodes[i]
                        .on_timer(ProtocolTimer::Consensus(ConsensusTimer::Request(seq)), now);
                    self.drive(i, acts);
                }
            }
        }
    }

    /// Commit order, derived KV state and response ids at the observed
    /// node, folded from the batches it actually committed (entries stay
    /// tracked because no verifier runs in this cluster).
    fn outcome(&self) -> (Vec<SeqNum>, BTreeMap<u64, u64>, Vec<TxnId>) {
        let mut kv: BTreeMap<u64, u64> = BTreeMap::new();
        let mut responses = Vec::new();
        for seq in &self.committed {
            let batch = self.nodes[OBSERVED]
                .committed_batch(*seq)
                .expect("observed node committed a batch it no longer tracks");
            for txn in batch.txns() {
                for op in &txn.ops {
                    match op {
                        Operation::Read(_) => {}
                        Operation::Write(k, v) => {
                            kv.insert(k.0, v.data);
                        }
                        Operation::ReadModifyWrite(k, s) => {
                            let slot = kv.entry(k.0).or_insert(0);
                            *slot = slot.wrapping_mul(31).wrapping_add(*s);
                        }
                    }
                }
                responses.push(txn.id);
            }
        }
        (self.committed.clone(), kv, responses)
    }

    fn digest_counter(&self, node: usize, name: &str) -> u64 {
        self.registry
            .counter_value(&format!("shim.{node}.digest.{name}"))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The equivalence obligation of the bandwidth-frugal mode: under any
    /// mix of cold caches (replicas missing the client broadcast, down to
    /// all-cold), loss on the fetch path and a fill poisoner, a digest-
    /// mode run's committed order, derived KV state and client responses
    /// are byte-identical to the full-body run on the same workload.
    #[test]
    fn digest_mode_equals_full_body_mode(
        batches in 1u64..4,
        // The first arm pins the all-cold case (every body fetched); the
        // second sweeps the whole feed range.
        feed_permille in prop_oneof![0u64..1, 0u64..1_001],
        loss_permille in 0u64..301,
        poison in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let chaos = DigestChaos {
            rng: SplitMix64(seed),
            feed_permille,
            // A poisoner only bites once it holds the batch; warming it
            // guarantees its garbage fills actually exist to reject.
            warm: if poison { vec![1] } else { Vec::new() },
            loss_permille,
            drops_left: 3,
            drop_first_fills: 0,
            poisoner: poison.then_some(1),
        };
        let mut digest_run = DigestCluster::new(1_000, 100, chaos);
        for batch in 0..batches {
            digest_run.submit_batch(batch);
            digest_run.pump_fetch_retries();
        }
        for (i, node) in digest_run.nodes.iter().enumerate() {
            prop_assert!(
                node.pending_reconstructions().is_empty(),
                "node {} still reconstructing after the retry pump",
                i
            );
        }
        let baseline = baseline_run(1_000, batches);
        let (d_seqs, d_kv, d_resps) = digest_run.outcome();
        let (b_seqs, b_kv, b_resps) = baseline.outcome();
        prop_assert_eq!(d_seqs, b_seqs, "commit order diverged across modes");
        prop_assert_eq!(d_kv, b_kv, "derived KV state diverged across modes");
        prop_assert_eq!(d_resps, b_resps, "client responses diverged across modes");
    }
}

#[test]
fn poisoned_fill_is_refetched_elsewhere_and_matches_full_mode() {
    // Nodes 2 and 3 are cold; node 1 is warm AND poisons every fill it
    // serves. The primary's two initial honest fills are swallowed, so
    // both cold replicas retry into node 1 — the next target in the fetch
    // rotation — and receive garbage bodies under the right ids. They
    // must quarantine the garbage, blame node 1, fall back to a full
    // fetch, and complete from an honest peer, committing exactly what
    // the full-body run commits.
    let chaos = DigestChaos {
        warm: vec![1],
        drop_first_fills: 2,
        poisoner: Some(1),
        ..DigestChaos::none(0)
    };
    let mut digest_run = DigestCluster::new(1_000, 100, chaos);
    for batch in 0..3 {
        digest_run.submit_batch(batch);
        digest_run.pump_fetch_retries();
    }
    assert!(
        digest_run.digest_counter(OBSERVED, "fallbacks") >= 1,
        "the poisoned fill must be detected and counted, got {}",
        digest_run.digest_counter(OBSERVED, "fallbacks")
    );
    assert!(
        digest_run.digest_counter(OBSERVED, "cache_misses") > 0,
        "cold replicas miss on every body"
    );
    let baseline = baseline_run(1_000, 3);
    assert_eq!(digest_run.outcome(), baseline.outcome());
}

#[test]
fn all_cold_digest_run_fetches_everything_and_matches_full_mode() {
    // Zero feed: every body of every batch must travel the fetch path,
    // and the outcome still matches the full-body run exactly.
    let mut digest_run = DigestCluster::new(1_000, 100, DigestChaos::none(0));
    for batch in 0..4 {
        digest_run.submit_batch(batch);
        digest_run.pump_fetch_retries();
    }
    for node in 1..4 {
        assert_eq!(digest_run.digest_counter(node, "cache_hits"), 0);
        assert_eq!(digest_run.digest_counter(node, "cache_misses"), 8);
        assert!(digest_run.digest_counter(node, "fetches_sent") >= 4);
    }
    assert!(
        digest_run.digest_counter(0, "fills_served") >= 12,
        "the primary answers every cold replica's fetch"
    );
    assert_eq!(digest_run.outcome(), baseline_run(1_000, 4).outcome());
}

#[test]
fn composed_fault_plan_is_survivable_and_deterministic() {
    use serverless_bft::core::SystemBuilder;
    use serverless_bft::serverless::CrashRestart;
    use serverless_bft::sim::{DiskLag, FaultPlan, LinkFaults, SimHarness, SimParams};

    let plan = || {
        FaultPlan::new()
            .lossy_node(
                NodeId(3),
                LinkFaults::lossy(0.15)
                    .with_duplicate(0.1)
                    .with_delay(0.2, SimDuration::from_micros(500)),
            )
            .isolate(
                NodeId(3),
                SimDuration::from_millis(100),
                SimDuration::from_millis(140),
            )
            .disk_lag(DiskLag {
                node: NodeId(1),
                extra: SimDuration::from_micros(200),
                jitter: SimDuration::from_micros(100),
            })
            .crash(CrashRestart::of(
                NodeId(2),
                SimDuration::from_millis(150),
                SimDuration::from_millis(80),
            ))
            .crash(CrashRestart::of(
                NodeId(3),
                SimDuration::from_millis(170),
                SimDuration::from_millis(80),
            ))
    };
    let run = || {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.workload.num_records = 2_000;
        cfg.workload.batch_size = 10;
        cfg.workload.num_clients = 40;
        cfg.durability = DurabilityConfig::enabled();
        let system = SystemBuilder::new(cfg).clients(40).build();
        let params = SimParams {
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(50),
            num_clients: 40,
            seed: 7,
            ..SimParams::default()
        };
        SimHarness::new(system, params)
            .with_fault_plan(plan())
            .run()
    };
    let a = run();
    // Liveness and safety under the composed plan: the shim keeps
    // committing, never diverges, and both crashed replicas recover.
    assert!(a.committed_txns > 0, "committed {}", a.committed_txns);
    assert_eq!(a.divergent_aborts, 0);
    assert_eq!(a.recoveries, 2, "both overlapping crashes must recover");
    // Every fault family actually fired.
    assert!(a.messages_dropped > 0, "loss must fire");
    assert!(a.messages_duplicated > 0, "duplication must fire");
    assert!(a.messages_delayed > 0, "extra delay must fire");
    assert!(a.partition_drops > 0, "the isolate window must fire");
    assert!(a.fsync_lags > 0, "the disk-lag straggler must fire");
    // The whole composition is deterministic from the run seed.
    let b = run();
    assert_eq!(
        (
            a.committed_txns,
            a.messages_dropped,
            a.messages_duplicated,
            a.messages_delayed,
            a.partition_drops,
            a.fsync_lags,
            a.recoveries,
            a.replay_batches,
            a.state_transfer_batches,
        ),
        (
            b.committed_txns,
            b.messages_dropped,
            b.messages_duplicated,
            b.messages_delayed,
            b.partition_drops,
            b.fsync_lags,
            b.recoveries,
            b.replay_batches,
            b.state_transfer_batches,
        ),
        "two runs with the same seed and fault plan must agree exactly"
    );
}

#[test]
fn digest_mode_survives_faults_on_the_fetch_path() {
    use serverless_bft::core::SystemBuilder;
    use serverless_bft::serverless::CrashRestart;
    use serverless_bft::sim::{FaultPlan, LinkFaults, SimHarness, SimParams};

    // Digest proposals under a hostile simulator run: a lossy replica
    // link chews on consensus traffic and a crash-restart wipes one
    // replica's volatile body cache, so proposals referencing bodies
    // broadcast while it was down can only complete through `BATCHFETCH`.
    //
    // The timing is deliberate. A body only travels the fetch path when
    // the client broadcast is lost but the proposal is not, and those are
    // separated by the batcher's residence time — so the batch size stays
    // above the client count (timer-flushed batches), the poll interval
    // stretches residence to 50 ms, and the restart lands between a
    // closed-loop submission wave and the poll tick that proposes it: the
    // wave's broadcasts die against the dark replica, the proposal
    // arrives after it restarts, and its cold cache must fetch.
    let run = || {
        let mut cfg = SystemConfig::with_shim_size(4);
        cfg.workload.num_records = 2_000;
        cfg.workload.batch_size = 200;
        cfg.workload.num_clients = 40;
        cfg.durability = DurabilityConfig::enabled();
        cfg.digest_proposals = true;
        let system = SystemBuilder::new(cfg).clients(40).build();
        let params = SimParams {
            duration: SimDuration::from_millis(600),
            warmup: SimDuration::from_millis(50),
            num_clients: 40,
            seed: 11,
            batch_poll_interval: SimDuration::from_millis(50),
            ..SimParams::default()
        };
        SimHarness::new(system, params)
            .with_fault_plan(
                FaultPlan::new()
                    .lossy_node(NodeId(3), LinkFaults::lossy(0.15))
                    .crash(CrashRestart::of(
                        NodeId(2),
                        SimDuration::from_millis(160),
                        SimDuration::from_millis(70),
                    )),
            )
            .run()
    };
    let a = run();
    assert!(a.committed_txns > 0, "committed {}", a.committed_txns);
    assert_eq!(a.divergent_aborts, 0, "digest mode must never diverge");
    assert_eq!(a.recoveries, 1, "the crashed replica must recover");
    assert!(
        a.body_cache_hits > 0,
        "the client broadcast keeps most caches warm"
    );
    assert!(
        a.batch_fetches > 0,
        "the restarted replica's cold cache must exercise the fetch path"
    );
    assert!(a.messages_dropped > 0, "loss must fire");
    let b = run();
    assert_eq!(
        (
            a.committed_txns,
            a.body_cache_hits,
            a.body_cache_misses,
            a.batch_fetches,
            a.recoveries,
        ),
        (
            b.committed_txns,
            b.body_cache_hits,
            b.body_cache_misses,
            b.batch_fetches,
            b.recoveries,
        ),
        "digest-mode chaos must replay exactly from the seed"
    );
}
