//! Quickstart: assemble a small serverless-edge deployment, run it on the
//! discrete-event simulator for half a simulated second, and print the
//! headline metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use serverless_bft::core::SystemBuilder;
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{SimDuration, SystemConfig};

fn main() {
    // SERVBFT-8: an 8-node shim, 3 executors per batch, batches of 100.
    let mut config = SystemConfig::servbft_8();
    config.workload.num_records = 100_000;

    let clients = 400;
    let system = SystemBuilder::new(config).clients(clients).build();

    let params = SimParams {
        duration: SimDuration::from_millis(400),
        warmup: SimDuration::from_millis(100),
        num_clients: clients,
        ..SimParams::default()
    };

    println!("running SERVBFT-8 with {clients} closed-loop clients…");
    let metrics = SimHarness::new(system, params).run();

    println!("committed transactions : {}", metrics.committed_txns);
    println!("aborted transactions   : {}", metrics.aborted_txns);
    println!(
        "throughput             : {:.0} txn/s",
        metrics.throughput_tps()
    );
    println!(
        "average latency        : {:.1} ms",
        metrics.avg_latency_secs() * 1e3
    );
    println!(
        "p99 latency            : {:.1} ms",
        metrics.latency.p99_secs() * 1e3
    );
    println!("executors spawned      : {}", metrics.executors_spawned);
    println!("messages delivered     : {}", metrics.messages_delivered);
}
