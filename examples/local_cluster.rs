//! Live thread-based emulation: the same protocol roles as the simulator,
//! but running on real OS threads connected by channels (one thread per
//! shim node, plus the verifier and an executor pool). Demonstrates the
//! library outside the discrete-event simulator.
//!
//! ```bash
//! cargo run --release --example local_cluster
//! ```

use serverless_bft::core::SystemBuilder;
use serverless_bft::runtime::LocalCluster;
use serverless_bft::types::{RegionSet, SystemConfig};
use std::time::Duration;

fn main() {
    let mut config = SystemConfig::with_shim_size(4);
    config.workload.num_records = 10_000;
    config.workload.batch_size = 4;
    config.regions = RegionSet::home_only();

    let system = SystemBuilder::new(config).clients(8).build();
    println!("starting a live 4-node shim + verifier + executor pool on threads…");
    let report = LocalCluster::new(system)
        .clients(8)
        .target_txns(500)
        .deadline(Duration::from_secs(30))
        .run();

    println!("committed transactions : {}", report.committed);
    println!("aborted transactions   : {}", report.aborted);
    println!(
        "wall-clock time        : {:.2} s",
        report.elapsed.as_secs_f64()
    );
    println!(
        "throughput             : {:.0} txn/s",
        report.throughput_tps()
    );
}
