//! Byzantine-attack demonstration: the shim primary suppresses client
//! requests (request-ignorance attack, Section V-A). Clients time out and
//! re-transmit to the trusted verifier, the verifier raises ERROR messages,
//! the nodes' re-transmission timers expire, and a view change replaces the
//! byzantine primary — after which the system commits normally.
//!
//! ```bash
//! cargo run --release --example attack_recovery
//! ```

use serverless_bft::core::{ShimAttack, SystemBuilder};
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{NodeId, SimDuration, SystemConfig};

fn run(label: &str, attack: Option<ShimAttack>) {
    let mut config = SystemConfig::with_shim_size(4);
    config.workload.num_records = 20_000;
    config.workload.batch_size = 10;
    config.timers.client_timeout = SimDuration::from_millis(40);
    config.timers.node_timeout = SimDuration::from_millis(30);
    config.timers.retransmit_timeout = SimDuration::from_millis(30);

    let mut builder = SystemBuilder::new(config).clients(80);
    if let Some(attack) = attack {
        builder = builder.attack(NodeId(0), attack);
    }
    let system = builder.build();
    let params = SimParams {
        duration: SimDuration::from_millis(600),
        warmup: SimDuration::from_millis(50),
        num_clients: 80,
        ..SimParams::default()
    };
    let metrics = SimHarness::new(system, params).run();
    println!(
        "{label:<28} committed={:>6}  aborted={:>4}  avg latency={:>7.1} ms",
        metrics.committed_txns,
        metrics.aborted_txns,
        metrics.avg_latency_secs() * 1e3
    );
}

fn main() {
    println!("request-suppression attack and recovery (4-node shim, 80 clients)\n");
    run("honest primary", None);
    run(
        "byzantine primary (suppress)",
        Some(ShimAttack::SuppressRequests),
    );
    run(
        "primary keeps node 3 in dark",
        Some(ShimAttack::KeepInDark {
            victims: vec![NodeId(3)],
        }),
    );
    run(
        "primary spawns 1 executor",
        Some(ShimAttack::SpawnFewer { count: 1 }),
    );
    println!("\nthe suppressing primary is replaced through ERROR → Υ-timeout → view change;");
    println!("the dark-node attack is masked (f_R = 1) and fewer-executor spawning is");
    println!("recovered through the verifier's abort timer and REPLACE messages.");
}
