//! The paper's motivating use case (Section II): a fleet of delivery UAVs
//! acts as both the clients and the shim. The UAVs batch their
//! data-processing requests, agree on an order with PBFT, and offload the
//! compute-intensive work (image recognition, route planning — modelled as
//! a 20 ms execution cost) to serverless executors spawned in the three
//! nearest cloud regions. Read-write sets are declared up front, so the
//! conflict-avoidance planner (Section VI-C) keeps conflicting deliveries
//! from aborting.
//!
//! ```bash
//! cargo run --release --example uav_delivery
//! ```

use serverless_bft::core::SystemBuilder;
use serverless_bft::sim::{SimHarness, SimParams};
use serverless_bft::types::{ConflictHandling, RegionSet, SimDuration, SpawningMode, SystemConfig};

fn main() {
    let mut config = SystemConfig::with_shim_size(8);
    config.regions = RegionSet::first_n(3);
    config.conflict_handling = ConflictHandling::KnownRwSets;
    config.spawning = SpawningMode::Decentralized; // every UAV spawns its share
    config.workload.num_records = 50_000; // delivery manifest entries
    config.workload.conflict_fraction = 0.2; // nearby deliveries touch shared zones
    config.workload.execution_cost = SimDuration::from_millis(20);
    config.workload.batch_size = 50;

    let uavs = 200;
    let system = SystemBuilder::new(config).clients(uavs).build();
    let params = SimParams {
        duration: SimDuration::from_millis(1_500),
        warmup: SimDuration::from_millis(300),
        num_clients: uavs,
        ..SimParams::default()
    };

    println!("UAV fleet of {uavs} vehicles, decentralized spawning, planner-managed conflicts…");
    let metrics = SimHarness::new(system, params).run();

    println!("deliveries processed   : {}", metrics.committed_txns);
    println!("deliveries aborted     : {}", metrics.aborted_txns);
    println!(
        "throughput             : {:.0} requests/s",
        metrics.throughput_tps()
    );
    println!(
        "average round trip     : {:.1} ms",
        metrics.avg_latency_secs() * 1e3
    );
    println!("executor invocations   : {}", metrics.executors_spawned);
    println!(
        "abort rate             : {:.2}% (planner keeps conflicting deliveries serialized)",
        metrics.abort_rate() * 100.0
    );
}
