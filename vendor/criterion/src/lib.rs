//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the micro-benchmarks use
//! (`criterion_group!` / `criterion_main!`, `bench_function`, `iter`,
//! `iter_batched`) with a simple median-of-samples timer instead of
//! criterion's full statistical machinery. Good enough to spot order-of-
//! magnitude regressions offline; not a replacement for real criterion.

use std::time::{Duration, Instant};

/// Batch sizing hint, accepted for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
}

impl Bencher {
    /// Times `routine`, printing a median nanoseconds-per-iteration line.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a per-iteration cost.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(50) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = Duration::from_millis(50)
            .checked_div(warm_iters.max(1) as u32)
            .unwrap_or_default();
        let budget = self
            .measurement
            .checked_div(self.samples as u32)
            .unwrap_or_default();
        let iters_per_sample =
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;
        let mut sample_ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            sample_ns.push(t.elapsed().as_nanos() / u128::from(iters_per_sample));
        }
        sample_ns.sort_unstable();
        self.report(sample_ns[sample_ns.len() / 2]);
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut sample_ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            sample_ns.push(t.elapsed().as_nanos());
        }
        sample_ns.sort_unstable();
        self.report(sample_ns[sample_ns.len() / 2]);
    }

    fn report(&self, median_ns: u128) {
        println!("    median {median_ns} ns/iter");
    }
}

/// Top-level handle mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; warm-up is folded into `iter`.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        let mut b = Bencher {
            samples: self.sample_size,
            measurement: self.measurement,
        };
        f(&mut b);
        self
    }
}

/// Declares a benchmark group, mirroring criterion's named-field form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
