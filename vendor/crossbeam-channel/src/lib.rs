//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the subset of the crossbeam channel API the thread runtime
//! uses (`unbounded`, cloneable `Sender`, `Receiver` with blocking /
//! timed receive and iteration) on top of `std::sync::mpsc`. `mpsc`
//! receivers are single-consumer, which matches how the runtime uses
//! them: every role thread owns its receiver exclusively.

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Sends `value`, failing only if all receivers have been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Blocks until a value arrives or all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Blocks up to `timeout` for a value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Blocking iterator over received values; ends when all senders drop.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}
