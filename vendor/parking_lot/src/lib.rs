//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the poison-free `parking_lot` API surface
//! the workspace uses: `lock()` / `read()` / `write()` return guards
//! directly instead of `Result`s. Poisoning is handled by unwrapping the
//! inner guard — a panic while holding a lock already aborts the affected
//! test, so recovering the data is the right behaviour here.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}
