//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace tests use:
//! [`Strategy`] with `prop_map`/`boxed`, integer-range and tuple
//! strategies, [`any`], `prop::collection::{vec, btree_set}`, the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), `prop_oneof!`
//! and the `prop_assert*` macros. Cases are generated from a seed derived
//! from the test name, so failures are reproducible run-to-run; there is
//! no shrinking — a failing case panics with the generated inputs left to
//! inspection via the assertion message.

use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an arbitrary string (the test name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u64, u32, usize, u8, u16);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident | $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A | 0, B | 1);
    (A | 0, B | 1, C | 2);
    (A | 0, B | 1, C | 2, D | 3);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s of up to `size` elements.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().generate(rng);
            // Duplicates collapse, so the set may come out smaller than
            // `n`; proptest's own strategy has the same property.
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set of up to `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }
}

/// Namespace mirror of the `proptest::prop` re-exports.
pub mod prop {
    pub use crate::collection;
    pub use crate::prop_oneof;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestRng,
    };
}

/// Chooses uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let arms: Vec<$crate::BoxedStrategy<_>> =
            vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::OneOf { arms }
    }};
}

/// Strategy built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The equally weighted alternatives.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Asserts a condition inside a property, reporting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each function runs its body once per generated
/// case, with every `name in strategy` binding freshly drawn.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Re-export used by generated code and tests below.
pub use collection as __collection;

// Silence the unused-import lint for the `BTreeSet`/`Range` imports above,
// which exist for the doc examples.
#[allow(unused)]
fn _unused(_: BTreeSet<u8>, _: Range<u8>) {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![(0u64..1).prop_map(|_| 'a'), (0u64..1).prop_map(|_| 'b')];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }

        #[test]
        fn collections_respect_sizes(v in collection::vec(0u64..10, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
