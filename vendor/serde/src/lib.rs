//! Offline stand-in for `serde`.
//!
//! The container image has no access to crates.io, so this crate provides
//! just enough surface for the workspace to compile: the `Serialize` /
//! `Deserialize` traits with the trait-object machinery `digest.rs`'s
//! manual impls use, and the no-op derive macros from the sibling
//! `serde_derive` stub. Nothing in the workspace actually serialises data
//! at runtime, so no concrete `Serializer` / `Deserializer` is shipped —
//! only the traits needed to type-check manual impls.

use std::fmt;

/// A serialisable type, mirroring `serde::Serialize`.
pub trait Serialize {
    /// Serialises `self` into the given serialiser.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A deserialisable type, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserialises a value from the given deserialiser.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data-format serialiser, mirroring `serde::Serializer`.
pub trait Serializer: Sized {
    /// Successful output of the serialiser.
    type Ok;
    /// Serialisation error type.
    type Error;

    /// Serialises a raw byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// A data-format deserialiser, mirroring `serde::Deserializer`.
pub trait Deserializer<'de>: Sized {
    /// Deserialisation error type.
    type Error: de::Error;

    /// Requests a byte slice from the input, driving `visitor`.
    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Deserialisation support types, mirroring `serde::de`.
pub mod de {
    use super::Deserialize;
    use std::fmt;

    /// What a visitor expected, used in error messages.
    pub trait Expected {
        /// Formats the expectation.
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;
    }

    impl<'de, T: Visitor<'de>> Expected for T {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.expecting(f)
        }
    }

    /// Deserialisation errors, mirroring `serde::de::Error`.
    pub trait Error: Sized {
        /// Builds an error from a message.
        fn custom<T: fmt::Display>(msg: T) -> Self;

        /// The input had the wrong number of elements.
        fn invalid_length(len: usize, _expected: &dyn Expected) -> Self {
            Self::custom(format_args!("invalid length {len}"))
        }
    }

    /// A visitor walking the deserialised input.
    pub trait Visitor<'de>: Sized {
        /// The value this visitor produces.
        type Value;

        /// Formats what this visitor expects to receive.
        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits a borrowed byte slice.
        fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
            Err(E::custom("unexpected bytes"))
        }

        /// Visits a sequence of elements.
        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(<A::Error as Error>::custom("unexpected sequence"))
        }
    }

    /// Access to the elements of a sequence being deserialised.
    pub trait SeqAccess<'de> {
        /// Deserialisation error type.
        type Error: Error;

        /// Returns the next element, or `None` at the end.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    }
}

macro_rules! impl_serde_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
                unreachable!("the serde stub has no concrete serialiser")
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                unreachable!("the serde stub has no concrete deserialiser")
            }
        }
    )*};
}
impl_serde_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64, String);

pub use serde_derive::{Deserialize, Serialize};

// Keep the `fmt` import alive for the trait signatures above.
#[allow(unused)]
fn _touch(_: fmt::Error) {}
