//! Offline stand-in for `serde_derive`.
//!
//! The workspace never serialises to a wire format (the simulator and the
//! thread runtime exchange in-memory values), so the derives expand to
//! nothing. The `serde` attribute is still registered so `#[serde(...)]`
//! field attributes would not break compilation if ever added.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
