//! Offline stand-in for `rand` 0.8.
//!
//! Provides the API subset the workload generators use: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen`, `gen_range` and
//! `gen_bool`, and the [`SeedableRng`] constructor `seed_from_u64`. The
//! generator is SplitMix64 — statistically solid for workload synthesis
//! and fully deterministic per seed, which is all the simulator needs.
//! It is **not** the same stream as the real `rand::StdRng` and must not
//! be used for cryptography.

/// Core RNG trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (stand-in for the
/// `Standard` distribution of real `rand`).
pub trait SampleUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `gen_range` accepts (half-open integer ranges).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
                // negligible for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
impl_sample_range!(u64, u32, usize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }
}
